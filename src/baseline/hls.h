#ifndef FLEET_BASELINE_HLS_H
#define FLEET_BASELINE_HLS_H

/**
 * @file
 * Models of the commercial OpenCL HLS system of Section 7.4 (tool
 * unavailable; substitution documented in DESIGN.md). Three findings are
 * modelled mechanistically:
 *
 *  1. Memory controller: the tool fills per-stream local arrays serially
 *     rather than in parallel, so input throughput is bounded by one
 *     64-bit word per loop initiation (the local arrays' two 32-bit
 *     ports), far below the channel's 512-bit bus. The paper measured
 *     524.84 MB/s pipelined and 675.06 MB/s unrolled on one channel vs.
 *     Fleet's 6.8 GB/s.
 *
 *  2. Processing units: without Fleet's mutual-exclusivity guarantee the
 *     scheduler must serialize every *syntactic* access to a BRAM port
 *     and to the output buffer, producing initiation intervals far above
 *     Fleet's guaranteed 1 (the paper reports 15 and 18 for JSON parsing
 *     and integer coding).
 *
 *  3. Area: OpenCL integer types round datapath widths up to 8/16/32
 *     bits and deeper pipelines add registers, so units are several times
 *     larger (4.6x / 2.8x in the paper).
 */

#include "lang/ast.h"
#include "memctl/params.h"
#include "model/device.h"
#include "rtl/circuit.h"

namespace fleet {
namespace baseline {

struct HlsMemoryParams
{
    /** Cycles per 64-bit global word in the pipelined serial-fill loop
     * (dominated by the load's initiation interval). */
    double pipelinedCyclesPerWord = 1.9;
    /** With the loop unrolled the tool overlaps slightly better. */
    double unrolledCyclesPerWord = 1.48;
    double clockMHz = 125.0;
};

/** Modelled single-channel input throughput of the HLS serial-fill
 * memory access pattern, in MB/s. */
double hlsMemoryMBps(const HlsMemoryParams &params, bool unrolled);

/** Hard ceiling of the serial-fill approach: 64 bits per cycle through
 * the local array's two 32-bit ports (the paper's 1 GB/s bound). */
double hlsMemoryCeilingMBps(double clock_mhz = 125.0);

/**
 * Conservative initiation interval for a Fleet program compiled as
 * OpenCL: one cycle, plus one for every syntactic access beyond each
 * resource's port budget (BRAMs and vector-register arrays have one
 * read and one write port; the output buffer has one write port).
 * Mutual exclusivity between accesses is NOT analyzed — the exact
 * pessimism the paper demonstrates.
 */
int hlsInitiationInterval(const lang::Program &program);

/** Per-unit area of the HLS version: Fleet's circuit re-estimated with
 * type widths rounded up to 8/16/32/64 and II-deep pipeline registers. */
model::Resources hlsAreaEstimate(const rtl::Circuit &circuit,
                                 const lang::Program &program,
                                 const memctl::ControllerParams &ctrl);

} // namespace baseline
} // namespace fleet

#endif // FLEET_BASELINE_HLS_H
