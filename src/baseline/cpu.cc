#include "baseline/cpu.h"

#include <algorithm>
#include <cstring>

#include "apps/bloom.h"
#include "apps/intcode.h"
#include "apps/regex.h"
#include "apps/regex_nfa.h"
#include "apps/sw.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace baseline {

namespace {

void
put32(std::vector<uint8_t> &out, uint32_t value)
{
    out.push_back(uint8_t(value));
    out.push_back(uint8_t(value >> 8));
    out.push_back(uint8_t(value >> 16));
    out.push_back(uint8_t(value >> 24));
}

uint32_t
get32(const uint8_t *p)
{
    return uint32_t(p[0]) | (uint32_t(p[1]) << 8) | (uint32_t(p[2]) << 16) |
           (uint32_t(p[3]) << 24);
}

// ---------------------------------------------------------------------------
// JSON field extraction: trie automaton over bytes.
// ---------------------------------------------------------------------------

class JsonCpu : public CpuKernel
{
  public:
    std::string name() const override { return "JsonParsing"; }

    std::vector<uint8_t>
    run(const std::vector<uint8_t> &stream) const override
    {
        std::vector<uint8_t> out;
        if (stream.empty())
            return out;
        const int n = stream[0];
        size_t pos = 1 + size_t(n) * 4;
        if (stream.size() < pos)
            return out;
        const uint8_t *trie = stream.data() + 1; // entries of 4 bytes

        constexpr uint8_t kNone = 0xff;
        enum Mode { Idle, ExpectKey, Key, AfterKey, ValueStart, Str,
                    AfterVal };
        Mode mode = Idle;
        uint8_t ctx = kNone;
        uint8_t stack[64];
        int depth = 0;
        uint8_t cand = kNone; // candidate entry index, kNone = invalid
        bool k_live = false;
        bool m_accept = false, m_seg_end = false;
        uint8_t m_down = kNone;
        bool capturing = false;

        auto entry = [&](uint8_t idx) { return trie + size_t(idx) * 4; };

        for (size_t i = pos; i < stream.size(); ++i) {
            uint8_t c = stream[i];
            switch (mode) {
              case Idle:
                if (c == '{') {
                    stack[depth++ & 63] = ctx;
                    ctx = n != 0 ? 0 : kNone;
                    cand = ctx;
                    mode = ExpectKey;
                }
                break;
              case ExpectKey:
                if (c == '"') {
                    mode = Key;
                    k_live = ctx != kNone;
                    cand = ctx;
                    m_accept = false;
                    m_seg_end = false;
                    m_down = kNone;
                } else if (c == '}') {
                    ctx = stack[--depth & 63];
                    mode = depth == 0 ? Idle : AfterVal;
                }
                break;
              case Key:
                if (c == '"') {
                    mode = AfterKey;
                    break;
                }
                if (k_live && cand != kNone) {
                    // Walk the consecutive sibling group.
                    uint8_t cur = cand;
                    bool matched = false;
                    while (true) {
                        const uint8_t *e = entry(cur);
                        if (e[0] == c) {
                            m_accept = e[3] & 1;
                            m_down = e[2];
                            m_seg_end = m_accept || e[2] != kNone;
                            cand = e[1]; // within
                            matched = true;
                            break;
                        }
                        if (e[3] & 2) // last sibling
                            break;
                        ++cur;
                    }
                    if (!matched) {
                        k_live = false;
                        m_seg_end = false;
                    }
                } else {
                    k_live = false;
                    m_seg_end = false;
                }
                break;
              case AfterKey:
                if (c == ':')
                    mode = ValueStart;
                break;
              case ValueStart:
                if (c == '"') {
                    mode = Str;
                    capturing = k_live && m_seg_end && m_accept;
                } else if (c == '{') {
                    stack[depth++ & 63] = ctx;
                    ctx = (k_live && m_seg_end) ? m_down : kNone;
                    mode = ExpectKey;
                }
                break;
              case Str:
                if (c == '"') {
                    if (capturing)
                        out.push_back('\n');
                    capturing = false;
                    mode = AfterVal;
                } else if (capturing) {
                    out.push_back(c);
                }
                break;
              case AfterVal:
                if (c == ',') {
                    mode = ExpectKey;
                } else if (c == '}') {
                    ctx = stack[--depth & 63];
                    mode = depth == 0 ? Idle : AfterVal;
                }
                break;
            }
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// Integer coding.
// ---------------------------------------------------------------------------

class IntcodeCpu : public CpuKernel
{
  public:
    std::string name() const override { return "IntegerCoding"; }

    std::vector<uint8_t>
    run(const std::vector<uint8_t> &stream) const override
    {
        std::vector<uint8_t> out;
        out.reserve(stream.size());
        size_t count = stream.size() / 4;
        uint64_t acc = 0;
        int acc_bits = 0;
        auto push = [&](uint64_t value, int bits) {
            acc |= value << acc_bits;
            acc_bits += bits;
            while (acc_bits >= 8) {
                out.push_back(uint8_t(acc));
                acc >>= 8;
                acc_bits -= 8;
            }
        };
        for (size_t base = 0; base + 4 <= count; base += 4) {
            uint32_t v[4];
            int vb[4];
            for (int j = 0; j < 4; ++j) {
                v[j] = get32(stream.data() + (base + j) * 4);
                vb[j] = apps::IntcodeApp::varByteBits(v[j]);
            }
            int best_idx = 15, best_cost = 1 << 30;
            uint32_t best_map = 0;
            for (int i = 15; i >= 0; --i) {
                int b = 2 * (i + 1);
                int cost = 0;
                uint32_t map = 0;
                for (int j = 0; j < 4; ++j) {
                    bool fit = b >= 32 || (v[j] >> b) == 0;
                    cost += fit ? b : vb[j];
                    if (!fit)
                        map |= 1u << j;
                }
                if (cost <= best_cost) {
                    best_cost = cost;
                    best_idx = i;
                    best_map = map;
                }
            }
            push(uint64_t(best_idx) | (uint64_t(best_map) << 4), 8);
            int b = 2 * (best_idx + 1);
            for (int j = 0; j < 4; ++j)
                if (!(best_map & (1u << j)))
                    push(v[j], b);
            for (int j = 0; j < 4; ++j) {
                if (best_map & (1u << j)) {
                    uint32_t x = v[j];
                    while (true) {
                        bool more = x >= 128;
                        push((x & 0x7f) | (more ? 0x80 : 0), 8);
                        if (!more)
                            break;
                        x >>= 7;
                    }
                }
            }
            if (acc_bits % 8 != 0)
                push(0, 8 - acc_bits % 8);
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// Gradient-boosted decision trees.
// ---------------------------------------------------------------------------

class DtreeCpu : public CpuKernel
{
  public:
    std::string name() const override { return "DecisionTree"; }

    std::vector<uint8_t>
    run(const std::vector<uint8_t> &stream) const override
    {
        std::vector<uint8_t> out;
        const uint8_t *p = stream.data();
        size_t words = stream.size() / 4;
        size_t pos = 0;
        auto next = [&] { return get32(p + 4 * pos++); };
        if (words < 3)
            return out;
        uint32_t num_trees = next();
        uint32_t num_features = next();
        uint32_t num_nodes = next();
        std::vector<uint32_t> roots(num_trees);
        for (auto &root : roots)
            root = next();
        std::vector<uint32_t> meta(num_nodes), value(num_nodes);
        for (uint32_t i = 0; i < num_nodes; ++i) {
            meta[i] = next();
            value[i] = next();
        }
        std::vector<uint32_t> point(num_features);
        while (pos + num_features <= words) {
            for (uint32_t f = 0; f < num_features; ++f)
                point[f] = next();
            uint32_t sum = 0;
            for (uint32_t root : roots) {
                uint32_t cur = root;
                while (!(meta[cur] & 0x80000000u)) {
                    uint32_t feat = (meta[cur] >> 20) & 0x7ff;
                    cur = point[feat] <= value[cur]
                              ? (meta[cur] >> 10) & 0x3ff
                              : meta[cur] & 0x3ff;
                }
                sum += value[cur];
            }
            put32(out, sum);
        }
        return out;
    }
};

// ---------------------------------------------------------------------------
// Smith-Waterman.
// ---------------------------------------------------------------------------

class SwCpu : public CpuKernel
{
  public:
    explicit SwCpu(apps::SwParams params) : params_(params) {}
    std::string name() const override { return "SmithWaterman"; }

    std::vector<uint8_t>
    run(const std::vector<uint8_t> &stream) const override
    {
        std::vector<uint8_t> out;
        const int m = params_.targetLen;
        if (stream.size() < size_t(m) + 1)
            return out;
        const uint8_t *target = stream.data();
        uint32_t threshold = stream[m];
        const uint32_t ms = uint32_t(params_.matchScore);
        const uint32_t mp = uint32_t(-params_.mismatchScore);
        const uint32_t gp = uint32_t(-params_.gapScore);
        const uint32_t cell_max = 255;

        std::vector<uint32_t> row(m, 0), next(m, 0);
        uint32_t index = 0;
        for (size_t t = size_t(m) + 1; t < stream.size(); ++t) {
            uint8_t c = stream[t];
            bool hit = false;
            uint32_t left_new = 0;
            for (int j = 0; j < m; ++j) {
                uint32_t diag_old = j == 0 ? 0 : row[j - 1];
                uint32_t cell =
                    target[j] == c
                        ? std::min(cell_max, diag_old + ms)
                        : (diag_old >= mp ? diag_old - mp : 0);
                uint32_t up = row[j] >= gp ? row[j] - gp : 0;
                cell = std::max(cell, up);
                if (j > 0) {
                    uint32_t left = left_new >= gp ? left_new - gp : 0;
                    cell = std::max(cell, left);
                }
                next[j] = cell;
                left_new = cell;
                hit |= cell >= threshold;
            }
            row.swap(next);
            if (hit)
                put32(out, index);
            ++index;
        }
        return out;
    }

  private:
    apps::SwParams params_;
};

// ---------------------------------------------------------------------------
// Regex: bit-parallel NFA over uint64 state.
// ---------------------------------------------------------------------------

class RegexCpu : public CpuKernel
{
  public:
    explicit RegexCpu(const std::string &pattern)
        : nfa_(apps::buildRegexNfa(pattern))
    {
        int positions = nfa_.numPositions();
        if (positions > 64)
            fatal("RegexCpu: more than 64 NFA positions");
        for (int c = 0; c < 256; ++c) {
            uint64_t mask = 0;
            for (int p = 0; p < positions; ++p)
                if (nfa_.positionClass[p].test(c))
                    mask |= uint64_t(1) << p;
            matchMask_[c] = mask;
        }
        first_ = 0;
        last_ = 0;
        followMask_.assign(positions, 0);
        for (int p = 0; p < positions; ++p) {
            if (nfa_.first[p])
                first_ |= uint64_t(1) << p;
            if (nfa_.last[p])
                last_ |= uint64_t(1) << p;
            for (int f : nfa_.follow[p])
                followMask_[p] |= uint64_t(1) << f;
        }
    }

    std::string name() const override { return "Regex"; }

    std::vector<uint8_t>
    run(const std::vector<uint8_t> &stream) const override
    {
        std::vector<uint8_t> out;
        uint64_t state = 0;
        for (size_t i = 0; i < stream.size(); ++i) {
            uint64_t reach = first_;
            uint64_t s = state;
            while (s) {
                int p = __builtin_ctzll(s);
                s &= s - 1;
                reach |= followMask_[p];
            }
            state = reach & matchMask_[stream[i]];
            if (state & last_)
                put32(out, uint32_t(i));
        }
        return out;
    }

  private:
    apps::RegexNfa nfa_;
    uint64_t matchMask_[256];
    uint64_t first_ = 0, last_ = 0;
    std::vector<uint64_t> followMask_;
};

// ---------------------------------------------------------------------------
// Bloom filter construction.
// ---------------------------------------------------------------------------

class BloomCpu : public CpuKernel
{
  public:
    BloomCpu(apps::BloomParams params, bool vectorized)
        : params_(params), vectorized_(vectorized)
    {
    }

    std::string name() const override { return "BloomFilter"; }

    std::vector<uint8_t>
    run(const std::vector<uint8_t> &stream) const override
    {
        std::vector<uint8_t> out;
        const int shift = 32 - bitsToRepresent(
                                   uint64_t(params_.filterBits) - 1);
        const int words = params_.filterBits / 32;
        std::vector<uint32_t> filter(words, 0);
        size_t items = stream.size() / 4;
        size_t in_block = 0;
        auto flush = [&] {
            for (int w = 0; w < words; ++w) {
                put32(out, filter[w]);
                filter[w] = 0;
            }
        };
        if (vectorized_ && params_.numHashes == 8) {
            // Unrolled, SIMD-friendly: eight independent multiplies per
            // item (the paper's AVX2-vectorizable structure).
            uint32_t c0 = apps::BloomApp::hashConstant(0);
            uint32_t c1 = apps::BloomApp::hashConstant(1);
            uint32_t c2 = apps::BloomApp::hashConstant(2);
            uint32_t c3 = apps::BloomApp::hashConstant(3);
            uint32_t c4 = apps::BloomApp::hashConstant(4);
            uint32_t c5 = apps::BloomApp::hashConstant(5);
            uint32_t c6 = apps::BloomApp::hashConstant(6);
            uint32_t c7 = apps::BloomApp::hashConstant(7);
            for (size_t i = 0; i < items; ++i) {
                if (in_block == size_t(params_.blockItems)) {
                    flush();
                    in_block = 0;
                }
                uint32_t item = get32(stream.data() + i * 4);
                uint32_t b0 = (item * c0) >> shift, b1 = (item * c1) >> shift;
                uint32_t b2 = (item * c2) >> shift, b3 = (item * c3) >> shift;
                uint32_t b4 = (item * c4) >> shift, b5 = (item * c5) >> shift;
                uint32_t b6 = (item * c6) >> shift, b7 = (item * c7) >> shift;
                filter[b0 >> 5] |= 1u << (b0 & 31);
                filter[b1 >> 5] |= 1u << (b1 & 31);
                filter[b2 >> 5] |= 1u << (b2 & 31);
                filter[b3 >> 5] |= 1u << (b3 & 31);
                filter[b4 >> 5] |= 1u << (b4 & 31);
                filter[b5 >> 5] |= 1u << (b5 & 31);
                filter[b6 >> 5] |= 1u << (b6 & 31);
                filter[b7 >> 5] |= 1u << (b7 & 31);
                ++in_block;
            }
        } else {
            for (size_t i = 0; i < items; ++i) {
                if (in_block == size_t(params_.blockItems)) {
                    flush();
                    in_block = 0;
                }
                uint32_t item = get32(stream.data() + i * 4);
                for (int h = 0; h < params_.numHashes; ++h) {
                    uint32_t bit =
                        (item * apps::BloomApp::hashConstant(h)) >> shift;
                    filter[bit >> 5] |= 1u << (bit & 31);
                }
                ++in_block;
            }
        }
        if (in_block == size_t(params_.blockItems))
            flush();
        return out;
    }

  private:
    apps::BloomParams params_;
    bool vectorized_;
};

} // namespace

std::unique_ptr<CpuKernel>
makeCpuKernel(const std::string &app_name, bool vectorized)
{
    if (app_name == "JsonParsing")
        return std::make_unique<JsonCpu>();
    if (app_name == "IntegerCoding")
        return std::make_unique<IntcodeCpu>();
    if (app_name == "DecisionTree")
        return std::make_unique<DtreeCpu>();
    if (app_name == "SmithWaterman")
        return std::make_unique<SwCpu>(apps::SwParams{});
    if (app_name == "Regex")
        return std::make_unique<RegexCpu>(apps::RegexParams{}.pattern);
    if (app_name == "BloomFilter")
        return std::make_unique<BloomCpu>(apps::BloomParams{}, vectorized);
    fatal("makeCpuKernel: unknown application '", app_name, "'");
}

} // namespace baseline
} // namespace fleet
