#ifndef FLEET_BASELINE_SIMT_H
#define FLEET_BASELINE_SIMT_H

/**
 * @file
 * GPU baseline model: a SIMT warp-divergence simulator standing in for
 * the paper's CUDA implementations on a V100 (hardware we do not have;
 * substitution documented in DESIGN.md). The paper's GPU execution model
 * is "each thread processes a single stream" with implicit warp-level
 * vectorization; its key finding is that control-flow divergence across
 * streams serializes warps (JSON +2.33x and integer coding +1.25x faster
 * with identical per-lane data; Section 7.2).
 *
 * The model executes the *same Fleet program* on 32 lanes in lockstep,
 * one virtual cycle per warp step, using the functional simulator's
 * action signatures. Lanes whose executed-action signature differs form
 * divergent groups; each distinct group issues its instructions
 * serially, while a converged warp would issue the union once. Warp
 * instruction counts convert to time via V100-calibrated machine
 * constants, floored by memory bandwidth.
 */

#include <vector>

#include "lang/ast.h"
#include "util/bitbuf.h"

namespace fleet {
namespace baseline {

struct SimtParams
{
    int warpSize = 32;
    double clockGHz = 1.38;      ///< V100 boost clock.
    int warpIssueSlots = 320;    ///< 80 SMs x 4 schedulers.
    double issueEfficiency = 0.75;
    double memBandwidthGBps = 900.0; ///< HBM2.
    double memEfficiency = 0.55;
    /** Fixed per-virtual-cycle overhead (loop control, token fetch). */
    int stepOverheadInsts = 6;
    /** Extra cost of a BRAM (shared/local memory) write: read-modify-
     * write with bank conflicts and address arithmetic. */
    int bramWriteExtraInsts = 24;
};

struct SimtResult
{
    uint64_t warpInstructions = 0;      ///< With divergence serialization.
    uint64_t convergedInstructions = 0; ///< If all lanes agreed.
    uint64_t warpSteps = 0;
    uint64_t inputBytes = 0;

    /** How much divergence inflates issued instructions (>= 1). */
    double
    divergenceFactor() const
    {
        return convergedInstructions
                   ? double(warpInstructions) / convergedInstructions
                   : 1.0;
    }

    double
    seconds(const SimtParams &params) const
    {
        double issue_rate = params.warpIssueSlots * params.clockGHz * 1e9 *
                            params.issueEfficiency;
        double compute = warpInstructions / issue_rate;
        double memory = inputBytes / (params.memBandwidthGBps * 1e9 *
                                      params.memEfficiency);
        return std::max(compute, memory);
    }

    double
    gbps(const SimtParams &params) const
    {
        return inputBytes / seconds(params) / 1e9;
    }
};

/**
 * Simulate the program over the given streams, `warpSize` streams per
 * warp (lanes in a short final warp are left idle). The result's
 * instruction counts are scaled as if the whole GPU ran warps of this
 * shape — i.e. they are per-warp counts multiplied by the number of
 * warps, which is what the time model needs.
 */
SimtResult simulateWarps(const lang::Program &program,
                         const std::vector<BitBuffer> &streams,
                         const SimtParams &params = {});

} // namespace baseline
} // namespace fleet

#endif // FLEET_BASELINE_SIMT_H
