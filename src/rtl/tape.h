#ifndef FLEET_RTL_TAPE_H
#define FLEET_RTL_TAPE_H

/**
 * @file
 * Compiled simulation of rtl::Circuit: a one-pass tape compiler lowers
 * the (optionally optimizer-cleaned, see rtl/opt.h) DAG into a flat
 * vector of fused micro-ops with pre-resolved operand slots, replacing
 * the interpreter's per-node NodeKind switch with dense dispatch over
 * combinational work only.
 *
 * Slot model: every live node owns one uint64_t slot. Constant slots
 * are loaded once at reset; input-port, register-output, and BRAM
 * read-latch slots are written by setInput()/step(); zero-extensions
 * ({0, x}) alias their operand's slot outright (values are already
 * masked, so zext is a no-op on the representation). Only real
 * combinational work (Bin/Un/Mux/Slice/Concat) emits a tape op, and
 * each op carries its width handling pre-computed: result masks, slice
 * shifts, sign-extension shifts, and constant shift amounts are baked
 * into the op at compile time instead of being re-derived every cycle.
 *
 * TapeSimulator mirrors the rtl::Simulator cycle contract exactly
 * (setInput -> evalComb -> observe -> step) and is bit-identical to it
 * on every observable: node values, register values, BRAM words.
 * BatchSimulator (rtl/batch_sim.h) evaluates the same TapeProgram
 * across many circuit replicas in structure-of-arrays layout.
 */

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "rtl/circuit.h"
#include "util/bits.h"

namespace fleet {
namespace rtl {

enum class TapeOpcode : uint8_t
{
    BinAdd, ///< dst = (A + B) & imm
    BinSub, ///< dst = (A - B) & imm
    BinMul, ///< dst = (A * B) & imm
    BinAnd, ///< dst = A & B (operands pre-masked; no result mask needed)
    BinOr,  ///< dst = A | B
    BinXor, ///< dst = A ^ B
    BinShlC, ///< dst = shl64(A, sa) & imm (constant shift)
    BinShrC, ///< dst = shr64(A, sa) (constant shift)
    BinShl, ///< dst = B >= sa(=width) ? 0 : (A << B) & imm
    BinShr, ///< dst = B >= 64 ? 0 : A >> B
    BinEq, BinNe,
    BinUlt, BinUle, BinUgt, BinUge,
    BinSlt, BinSle, BinSgt, BinSge, ///< sa/sb = 64 - operand width
    BinLAnd, ///< dst = (A != 0) & (B != 0)
    BinLOr,  ///< dst = (A != 0) | (B != 0)
    UnNot,   ///< dst = ~A & imm
    UnLNot,  ///< dst = A == 0
    UnNeg,   ///< dst = (0 - A) & imm
    Mux,     ///< dst = C ? A : B
    Slice,   ///< dst = (A >> sa) & imm
    Concat,  ///< dst = shl64(A, sa) | B

    /**
     * Lane-uniform variants: identical semantics to the base opcode,
     * but the tape compiler has proven the flagged operand is a
     * constant slot, i.e. it holds the same value in every lane of a
     * BatchSimulator. The scalar evaluator treats them exactly like the
     * base opcode; the batched evaluator hoists the operand load out of
     * the per-lane loop (one scalar read + broadcast instead of a full
     * lane-stride stream), which matters because the SoA sweep is
     * memory-bound. Commutative ops are canonicalized so the uniform
     * operand is B; const-vs-const ops never reach the tape (folded at
     * circuit construction).
     */
    BinAddU, BinSubU, BinMulU,          ///< B uniform.
    BinAndU, BinOrU, BinXorU,           ///< B uniform.
    BinEqU, BinNeU,                     ///< B uniform.
    BinUltU, BinUleU, BinUgtU, BinUgeU, ///< B uniform (flipped if A was).
    MuxAU, ///< A uniform: dst = C ? const : B
    MuxBU, ///< B uniform: dst = C ? A : const
    MuxU2, ///< A and B uniform: dst = C ? constA : constB
};

/** One fused micro-op. 32 bytes; a tape is evaluated front to back. */
struct TapeOp
{
    TapeOpcode op;
    uint8_t sa = 0; ///< Shift / width auxiliary (see TapeOpcode).
    uint8_t sb = 0;
    int32_t dst = 0;
    int32_t a = 0;
    int32_t b = 0;
    int32_t c = 0;
    uint64_t imm = 0; ///< Usually the result mask.
};

/**
 * A compiled circuit: the op tape plus the slot bindings of every
 * stateful element. Self-contained — does not reference the source
 * Circuit after compile() returns — so one TapeProgram is shared by
 * every simulator replica of the same processing unit.
 */
struct TapeProgram
{
    struct RegSpec
    {
        int32_t next;
        int32_t enable; ///< -1 = always enabled.
        int32_t out;
        uint64_t init;
    };
    struct BramSpec
    {
        int32_t rdAddr;
        int32_t wrEn;
        int32_t wrAddr;
        int32_t wrData;
        int32_t rdData;
        uint32_t elements;
    };

    std::vector<TapeOp> ops;
    int32_t numSlots = 0;
    /** (slot, value) pairs loaded once at reset. */
    std::vector<std::pair<int32_t, uint64_t>> constSlots;
    std::vector<int32_t> inputSlot; ///< Per input port; -1 = eliminated.
    std::vector<int> inputWidth;
    /**
     * Per output port, the slot of its driving node (the circuit's
     * observable roots, in circuit output order). The JIT backend
     * (rtl/jit.h) keeps chunk-internal intermediates in registers and
     * materializes only these slots, the step-read slots (register
     * next/enable, BRAM ports) and chunk-boundary values — every
     * exactly-observed value in the fits32 sense above.
     */
    std::vector<int32_t> outputSlots;
    std::vector<RegSpec> regs;
    std::vector<BramSpec> brams;
    /** Source-circuit NodeId -> slot; -1 for eliminated nodes. */
    std::vector<int32_t> nodeSlot;

    /**
     * True when at most the low 32 bits of every node can influence any
     * exactly-observed value (output ports, registers, BRAM contents) —
     * a demanded-bits analysis, so circuits with wider interior nodes
     * still qualify when all their consumers are low-bit-closed (e.g. a
     * 32x32 -> 64 multiply whose results are always sliced below bit
     * 32). BatchSimulator then stores lane values as uint32_t — half
     * the memory traffic of the SoA sweep and twice the SIMD lanes per
     * vector. Ports, registers, BRAMs and reports stay bit-identical to
     * the interpreter; value() on an interior node wider than 32 bits
     * may return only its low 32 bits. Scalar evaluation always uses
     * uint64_t and is exact on every node.
     */
    bool fits32 = false;

    /// @name Compile-time statistics (surfaced as trace counters and
    /// in bench/micro_rtl_engines JSON so speedup regressions can be
    /// attributed to optimizer behaviour, not just engine behaviour).
    /// @{
    uint64_t sourceNodes = 0;
    uint64_t nodesEliminated = 0; ///< Source nodes with no slot of their own.
    uint64_t optSourceNodes = 0;  ///< Optimizer input node count.
    uint64_t optResultNodes = 0;  ///< Nodes after DCE/folding/simplify.
    uint64_t optDeadNodes = 0;    ///< Nodes unreachable from roots.
    /// @}

    /**
     * Content hash over everything that determines evaluation semantics
     * (ops field-by-field, const values, reg/BRAM specs, slot count,
     * fits32) — NOT over the compile statistics above. Two tapes with
     * equal hashes evaluate identically, which is what the JIT backend
     * (rtl/jit.h) keys its on-disk artifact cache on.
     */
    uint64_t contentHash() const;

    /**
     * Lower a circuit to a tape. With optimize (default) the circuit is
     * first cleaned by rtl::optimize(); the source circuit itself is
     * never modified (Verilog emission and area accounting keep reading
     * it).
     */
    static TapeProgram compile(const Circuit &circuit, bool optimize = true);

    /** Slot of a source-circuit node; panics if the node was eliminated. */
    int32_t slotOf(NodeId source_node) const;
};

/**
 * Evaluate a tape over a strided slot array: slot s of lane `offset`
 * lives at slots[s * stride + offset]. Shared by the scalar
 * TapeSimulator (stride 1, T = uint64_t) and BatchSimulator's
 * single-lane path (stride = lanes, T per TapeProgram::fits32).
 *
 * The element type T only has to be wide enough for every node of the
 * circuit: all semantics below are width-masked, so narrowing the
 * representation never changes a value. EB-relative guards replace the
 * 64-bit-specific ones (shl64/shr64, sign-extension shifts stored as
 * 64 - width are rebased onto EB).
 */
template <typename T>
inline void
evalTapeOps(const std::vector<TapeOp> &ops, T *slots, size_t stride,
            size_t offset)
{
    constexpr int EB = int(sizeof(T)) * 8; ///< Element bits.
    auto at = [&](int32_t s) -> T & {
        return slots[size_t(s) * stride + offset];
    };
    for (const TapeOp &op : ops) {
        const T a = at(op.a);
        const T b = at(op.b);
        T v = 0;
        const T imm = T(op.imm);
        // The U variants are batch-layout hints only; scalar evaluation
        // is the base semantics. Sign-extension shift amounts are
        // stored as 64 - width and rebased onto EB here (EB - width).
        using S = std::make_signed_t<T>;
        const int rebase = 64 - EB;
        switch (op.op) {
          case TapeOpcode::BinAdd:
          case TapeOpcode::BinAddU: v = (a + b) & imm; break;
          case TapeOpcode::BinSub:
          case TapeOpcode::BinSubU: v = (a - b) & imm; break;
          case TapeOpcode::BinMul:
          case TapeOpcode::BinMulU: v = (a * b) & imm; break;
          case TapeOpcode::BinAnd:
          case TapeOpcode::BinAndU: v = a & b; break;
          case TapeOpcode::BinOr:
          case TapeOpcode::BinOrU:  v = a | b; break;
          case TapeOpcode::BinXor:
          case TapeOpcode::BinXorU: v = a ^ b; break;
          case TapeOpcode::BinShlC:
            v = op.sa >= EB ? T(0) : T((a << op.sa) & imm);
            break;
          case TapeOpcode::BinShrC:
            v = op.sa >= EB ? T(0) : T(a >> op.sa);
            break;
          case TapeOpcode::BinShl:
            // op.sa (node width) may exceed EB under demanded-width
            // narrowing; the low EB bits are 0 for any shift >= EB.
            v = b >= T(op.sa) || b >= T(EB) ? T(0) : T((a << b) & imm);
            break;
          case TapeOpcode::BinShr:
            v = b >= T(EB) ? T(0) : T(a >> b);
            break;
          case TapeOpcode::BinEq:
          case TapeOpcode::BinEqU:  v = a == b; break;
          case TapeOpcode::BinNe:
          case TapeOpcode::BinNeU:  v = a != b; break;
          case TapeOpcode::BinUlt:
          case TapeOpcode::BinUltU: v = a < b; break;
          case TapeOpcode::BinUle:
          case TapeOpcode::BinUleU: v = a <= b; break;
          case TapeOpcode::BinUgt:
          case TapeOpcode::BinUgtU: v = a > b; break;
          case TapeOpcode::BinUge:
          case TapeOpcode::BinUgeU: v = a >= b; break;
          case TapeOpcode::BinSlt: {
            const int sa = op.sa - rebase, sb = op.sb - rebase;
            v = (S(T(a << sa)) >> sa) < (S(T(b << sb)) >> sb);
            break;
          }
          case TapeOpcode::BinSle: {
            const int sa = op.sa - rebase, sb = op.sb - rebase;
            v = (S(T(a << sa)) >> sa) <= (S(T(b << sb)) >> sb);
            break;
          }
          case TapeOpcode::BinSgt: {
            const int sa = op.sa - rebase, sb = op.sb - rebase;
            v = (S(T(a << sa)) >> sa) > (S(T(b << sb)) >> sb);
            break;
          }
          case TapeOpcode::BinSge: {
            const int sa = op.sa - rebase, sb = op.sb - rebase;
            v = (S(T(a << sa)) >> sa) >= (S(T(b << sb)) >> sb);
            break;
          }
          case TapeOpcode::BinLAnd: v = (a != 0) & (b != 0); break;
          case TapeOpcode::BinLOr:  v = (a != 0) | (b != 0); break;
          case TapeOpcode::UnNot:  v = ~a & imm; break;
          case TapeOpcode::UnLNot: v = a == 0; break;
          case TapeOpcode::UnNeg:  v = (T(0) - a) & imm; break;
          case TapeOpcode::Mux:
          case TapeOpcode::MuxAU:
          case TapeOpcode::MuxBU:
          case TapeOpcode::MuxU2:  v = at(op.c) != 0 ? a : b; break;
          case TapeOpcode::Slice:  v = (a >> op.sa) & imm; break;
          case TapeOpcode::Concat:
            v = op.sa >= EB ? b : T((a << op.sa) | b);
            break;
        }
        at(op.dst) = v;
    }
}

/**
 * Scalar tape evaluator with the exact cycle contract of rtl::Simulator:
 * setInput -> evalComb -> observe -> step. value()/regValue()/bramWord()
 * take *source-circuit* identifiers, so code written against Simulator
 * ports over unchanged.
 */
class TapeSimulator
{
  public:
    explicit TapeSimulator(std::shared_ptr<const TapeProgram> tape);
    /** Convenience: compile-and-own. */
    explicit TapeSimulator(const Circuit &circuit, bool optimize = true);

    void reset();
    void setInput(int port_index, uint64_t value)
    {
        int32_t s = tape_->inputSlot[port_index];
        if (s >= 0)
            slots_[s] = truncTo(value, tape_->inputWidth[port_index]);
    }
    void evalComb() { evalTapeOps(tape_->ops, slots_.data(), 1, 0); }
    /** Value of a source-circuit node as of the last evalComb(). */
    uint64_t value(NodeId source_node) const
    {
        return slots_[tape_->slotOf(source_node)];
    }
    void step();

    uint64_t regValue(int reg_index) const { return regValues_[reg_index]; }
    uint64_t bramWord(int bram_index, int addr) const;
    uint64_t cycles() const { return cycles_; }
    const TapeProgram &tape() const { return *tape_; }

  private:
    std::shared_ptr<const TapeProgram> tape_;
    std::vector<uint64_t> slots_;
    std::vector<uint64_t> regValues_;
    std::vector<std::vector<uint64_t>> bramMems_;
    std::vector<uint64_t> latchTmp_; ///< Per-BRAM read-first scratch.
    uint64_t cycles_ = 0;
};

} // namespace rtl
} // namespace fleet

#endif // FLEET_RTL_TAPE_H
