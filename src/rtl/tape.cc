#include "rtl/tape.h"

#include <algorithm>
#include <optional>

#include "rtl/opt.h"
#include "util/logging.h"

namespace fleet {
namespace rtl {

namespace {

TapeOp
lowerBin(const Circuit &c, const Node &n, int32_t dst, int32_t a, int32_t b)
{
    const auto &nodes = c.nodes();
    const int wa = nodes[n.a].width, wb = nodes[n.b].width;
    const int w = n.width;
    TapeOp op;
    op.dst = dst;
    op.a = a;
    op.b = b;
    op.imm = mask64(w);
    switch (n.binOp) {
      case BinOp::Add: op.op = TapeOpcode::BinAdd; break;
      case BinOp::Sub: op.op = TapeOpcode::BinSub; break;
      case BinOp::Mul: op.op = TapeOpcode::BinMul; break;
      case BinOp::And: op.op = TapeOpcode::BinAnd; break;
      case BinOp::Or:  op.op = TapeOpcode::BinOr; break;
      case BinOp::Xor: op.op = TapeOpcode::BinXor; break;
      case BinOp::Shl:
        if (nodes[n.b].kind == NodeKind::Const) {
            op.op = TapeOpcode::BinShlC;
            op.sa = uint8_t(std::min<uint64_t>(nodes[n.b].value, 64));
        } else {
            op.op = TapeOpcode::BinShl;
            op.sa = uint8_t(w);
        }
        break;
      case BinOp::Shr:
        if (nodes[n.b].kind == NodeKind::Const) {
            op.op = TapeOpcode::BinShrC;
            op.sa = uint8_t(std::min<uint64_t>(nodes[n.b].value, 64));
        } else {
            op.op = TapeOpcode::BinShr;
        }
        break;
      case BinOp::Eq:  op.op = TapeOpcode::BinEq; break;
      case BinOp::Ne:  op.op = TapeOpcode::BinNe; break;
      case BinOp::Ult: op.op = TapeOpcode::BinUlt; break;
      case BinOp::Ule: op.op = TapeOpcode::BinUle; break;
      case BinOp::Ugt: op.op = TapeOpcode::BinUgt; break;
      case BinOp::Uge: op.op = TapeOpcode::BinUge; break;
      case BinOp::Slt:
      case BinOp::Sle:
      case BinOp::Sgt:
      case BinOp::Sge:
        op.op = n.binOp == BinOp::Slt   ? TapeOpcode::BinSlt
                : n.binOp == BinOp::Sle ? TapeOpcode::BinSle
                : n.binOp == BinOp::Sgt ? TapeOpcode::BinSgt
                                        : TapeOpcode::BinSge;
        op.sa = uint8_t(64 - wa);
        op.sb = uint8_t(64 - wb);
        break;
      case BinOp::LAnd:
        // 1-bit operands are already 0/1 under the masking invariant,
        // so logical and bitwise coincide and the bitwise form needs no
        // != 0 normalization per element.
        op.op = wa == 1 && wb == 1 ? TapeOpcode::BinAnd
                                   : TapeOpcode::BinLAnd;
        break;
      case BinOp::LOr:
        op.op = wa == 1 && wb == 1 ? TapeOpcode::BinOr : TapeOpcode::BinLOr;
        break;
    }
    return op;
}

/** Base opcode -> lane-uniform-B variant (identity if none exists). */
TapeOpcode
uniformVariant(TapeOpcode op)
{
    switch (op) {
      case TapeOpcode::BinAdd: return TapeOpcode::BinAddU;
      case TapeOpcode::BinSub: return TapeOpcode::BinSubU;
      case TapeOpcode::BinMul: return TapeOpcode::BinMulU;
      case TapeOpcode::BinAnd: return TapeOpcode::BinAndU;
      case TapeOpcode::BinOr:  return TapeOpcode::BinOrU;
      case TapeOpcode::BinXor: return TapeOpcode::BinXorU;
      case TapeOpcode::BinEq:  return TapeOpcode::BinEqU;
      case TapeOpcode::BinNe:  return TapeOpcode::BinNeU;
      case TapeOpcode::BinUlt: return TapeOpcode::BinUltU;
      case TapeOpcode::BinUle: return TapeOpcode::BinUleU;
      case TapeOpcode::BinUgt: return TapeOpcode::BinUgtU;
      case TapeOpcode::BinUge: return TapeOpcode::BinUgeU;
      default: return op;
    }
}

/**
 * Rewrite ops whose operands live in constant slots to the lane-uniform
 * variants (canonicalizing the uniform operand to B), so the batched
 * evaluator can hoist those loads out of the per-lane loop. Pure
 * re-tagging: scalar semantics are unchanged.
 */
void
specializeUniformOperands(TapeProgram &t)
{
    std::vector<char> uni(size_t(t.numSlots), 0);
    for (const auto &[s, v] : t.constSlots)
        uni[size_t(s)] = 1;
    for (TapeOp &op : t.ops) {
        switch (op.op) {
          case TapeOpcode::BinAdd:
          case TapeOpcode::BinMul:
          case TapeOpcode::BinAnd:
          case TapeOpcode::BinOr:
          case TapeOpcode::BinXor:
          case TapeOpcode::BinEq:
          case TapeOpcode::BinNe:
            if (uni[op.a] && !uni[op.b])
                std::swap(op.a, op.b); // commutative
            if (uni[op.b])
                op.op = uniformVariant(op.op);
            break;
          case TapeOpcode::BinSub:
            if (uni[op.b])
                op.op = TapeOpcode::BinSubU;
            break;
          case TapeOpcode::BinUlt:
          case TapeOpcode::BinUle:
          case TapeOpcode::BinUgt:
          case TapeOpcode::BinUge:
            if (uni[op.a] && !uni[op.b]) {
                std::swap(op.a, op.b); // K < x  <=>  x > K, etc.
                op.op = op.op == TapeOpcode::BinUlt   ? TapeOpcode::BinUgt
                        : op.op == TapeOpcode::BinUle ? TapeOpcode::BinUge
                        : op.op == TapeOpcode::BinUgt ? TapeOpcode::BinUlt
                                                      : TapeOpcode::BinUle;
            }
            if (uni[op.b])
                op.op = uniformVariant(op.op);
            break;
          case TapeOpcode::Mux:
            op.op = uni[op.a] && uni[op.b] ? TapeOpcode::MuxU2
                    : uni[op.a]            ? TapeOpcode::MuxAU
                    : uni[op.b]            ? TapeOpcode::MuxBU
                                           : TapeOpcode::Mux;
            break;
          default:
            break;
        }
    }
}

/**
 * Demanded bits per node: only the low demanded[i] bits of node i can
 * influence any exactly-observed value (output ports, registers, BRAM
 * contents). Used to decide whether 32-bit lane storage is exact for
 * everything observable even when the circuit contains wider nodes —
 * e.g. a 32x32 -> 64 multiply whose consumers all slice bits < 32.
 *
 * Ports, registers and BRAMs demand every bit (they are compared
 * bit-for-bit against the interpreter), as do operands that feed
 * non-low-bit-closed ops (comparisons, right shifts, logical tests).
 * Low-bit-closed ops (Add/Sub/Mul/Shl/And/Or/Xor/Not/Neg/Mux/Concat/
 * Slice) propagate only the bits their consumers demand. Nodes nothing
 * demands (dead code when compiling unoptimized) conservatively demand
 * their full width, preserving value() on them.
 */
std::vector<int>
demandedWidths(const Circuit &c)
{
    const auto &nodes = c.nodes();
    std::vector<int> demand(nodes.size(), 0);
    auto want = [&](NodeId n, int bits) {
        if (n == kNoNode)
            return;
        bits = std::min(bits, nodes[n].width);
        demand[n] = std::max(demand[n], bits);
    };
    auto wantFull = [&](NodeId n) {
        if (n != kNoNode)
            want(n, nodes[n].width);
    };
    for (const auto &o : c.outputs())
        wantFull(o.node);
    for (const auto &r : c.regs()) {
        wantFull(r.out);
        wantFull(r.next);
        wantFull(r.enable);
    }
    for (const auto &b : c.brams()) {
        wantFull(b.rdData);
        wantFull(b.rdAddr);
        wantFull(b.wrEn);
        wantFull(b.wrAddr);
        wantFull(b.wrData);
    }
    // Reverse-topological sweep: node ids are topo-ordered, so every
    // consumer of node i has a higher id and was already visited.
    for (size_t i = nodes.size(); i-- > 0;) {
        const Node &n = nodes[i];
        const int k = demand[i];
        if (k == 0)
            continue; // Dead here; made conservative after the sweep.
        switch (n.kind) {
          case NodeKind::Const:
          case NodeKind::Input:
          case NodeKind::RegOut:
          case NodeKind::BramRdData:
            break;
          case NodeKind::Bin:
            switch (n.binOp) {
              case BinOp::Add:
              case BinOp::Sub:
              case BinOp::Mul:
              case BinOp::And:
              case BinOp::Or:
              case BinOp::Xor:
                want(n.a, k);
                want(n.b, k);
                break;
              case BinOp::Shl:
                want(n.a, k);
                wantFull(n.b);
                break;
              case BinOp::Shr:
                // A constant shift pulls bits [s, s+k) down; a variable
                // shift can reach any bit.
                if (nodes[n.b].kind == NodeKind::Const)
                    want(n.a,
                         k + int(std::min<uint64_t>(nodes[n.b].value, 64)));
                else
                    wantFull(n.a);
                wantFull(n.b);
                break;
              default: // Comparisons and logical ops read every bit.
                wantFull(n.a);
                wantFull(n.b);
                break;
            }
            break;
          case NodeKind::Un:
            if (n.unOp == UnOp::LNot)
                wantFull(n.a);
            else
                want(n.a, k);
            break;
          case NodeKind::Mux:
            want(n.a, k);
            want(n.b, k);
            wantFull(n.c);
            break;
          case NodeKind::Slice:
            want(n.a, n.index + k);
            break;
          case NodeKind::Concat:
            // {a, b}: b is the low part.
            want(n.b, k);
            if (k > nodes[n.b].width)
                want(n.a, k - nodes[n.b].width);
            break;
        }
    }
    for (size_t i = 0; i < nodes.size(); ++i)
        if (demand[i] == 0)
            demand[i] = nodes[i].width;
    return demand;
}

} // namespace

TapeProgram
TapeProgram::compile(const Circuit &circuit, bool optimize)
{
    circuit.validate();

    // Optimize into a scratch circuit; the source is left untouched so
    // Verilog emission and area accounting keep seeing synthesis truth.
    std::optional<OptResult> opt_result;
    const Circuit *c = &circuit;
    std::vector<NodeId> source_map; // source id -> id in *c
    if (optimize) {
        opt_result = rtl::optimize(circuit);
        c = &opt_result->circuit;
        source_map = std::move(opt_result->nodeMap);
    } else {
        source_map.resize(circuit.nodes().size());
        for (size_t i = 0; i < source_map.size(); ++i)
            source_map[i] = static_cast<NodeId>(i);
    }

    const auto &nodes = c->nodes();
    TapeProgram t;
    t.inputSlot.assign(c->inputs().size(), -1);
    t.inputWidth.resize(c->inputs().size());
    for (size_t i = 0; i < c->inputs().size(); ++i)
        t.inputWidth[i] = c->inputs()[i].width;
    t.regs.resize(c->regs().size());
    t.brams.resize(c->brams().size());

    // One forward pass: allocate a slot per node, emit ops for real
    // combinational work, alias pure zero-extensions to their operand.
    std::vector<int32_t> slot(nodes.size(), -1);
    auto new_slot = [&t]() { return t.numSlots++; };
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        switch (n.kind) {
          case NodeKind::Const:
            slot[i] = new_slot();
            t.constSlots.emplace_back(slot[i], n.value);
            break;
          case NodeKind::Input:
            slot[i] = new_slot();
            t.inputSlot[n.index] = slot[i];
            break;
          case NodeKind::RegOut:
            slot[i] = new_slot();
            t.regs[n.index].out = slot[i];
            t.regs[n.index].init = c->regs()[n.index].init;
            break;
          case NodeKind::BramRdData:
            slot[i] = new_slot();
            t.brams[n.index].rdData = slot[i];
            t.brams[n.index].elements =
                uint32_t(c->brams()[n.index].elements);
            break;
          case NodeKind::Concat:
            // Zero-extension is a no-op on masked uint64 payloads:
            // alias the slot, emit nothing.
            if (nodes[n.a].kind == NodeKind::Const && nodes[n.a].value == 0) {
                slot[i] = slot[n.b];
                break;
            }
            slot[i] = new_slot();
            {
                TapeOp op;
                op.op = TapeOpcode::Concat;
                op.dst = slot[i];
                op.a = slot[n.a];
                op.b = slot[n.b];
                op.sa = uint8_t(nodes[n.b].width);
                t.ops.push_back(op);
            }
            break;
          case NodeKind::Slice:
            // A full-width slice (only reachable with the optimizer
            // off) is also an alias.
            if (n.index == 0 && n.width == nodes[n.a].width) {
                slot[i] = slot[n.a];
                break;
            }
            slot[i] = new_slot();
            {
                TapeOp op;
                op.op = TapeOpcode::Slice;
                op.dst = slot[i];
                op.a = slot[n.a];
                op.sa = uint8_t(n.index);
                op.imm = mask64(n.width);
                t.ops.push_back(op);
            }
            break;
          case NodeKind::Un:
            slot[i] = new_slot();
            {
                TapeOp op;
                // LNot of a 1-bit value is ~a & 1 (the masking invariant
                // makes a ∈ {0, 1}); UnNot is cheaper than == 0.
                if (n.unOp == UnOp::LNot && nodes[n.a].width == 1)
                    op.op = TapeOpcode::UnNot;
                else
                    op.op = n.unOp == UnOp::Not    ? TapeOpcode::UnNot
                            : n.unOp == UnOp::LNot ? TapeOpcode::UnLNot
                                                   : TapeOpcode::UnNeg;
                op.dst = slot[i];
                op.a = slot[n.a];
                op.imm = mask64(n.width);
                t.ops.push_back(op);
            }
            break;
          case NodeKind::Mux:
            slot[i] = new_slot();
            {
                TapeOp op;
                op.op = TapeOpcode::Mux;
                op.dst = slot[i];
                op.a = slot[n.a];
                op.b = slot[n.b];
                op.c = slot[n.c];
                t.ops.push_back(op);
            }
            break;
          case NodeKind::Bin:
            slot[i] = new_slot();
            t.ops.push_back(lowerBin(*c, n, slot[i], slot[n.a], slot[n.b]));
            break;
        }
    }

    specializeUniformOperands(t);

    {
        const std::vector<int> demand = demandedWidths(*c);
        t.fits32 = std::all_of(demand.begin(), demand.end(),
                               [](int w) { return w <= 32; });
    }

    for (size_t i = 0; i < c->regs().size(); ++i) {
        const RegInfo &r = c->regs()[i];
        t.regs[i].next = slot[r.next];
        t.regs[i].enable = r.enable == kNoNode ? -1 : slot[r.enable];
    }
    for (size_t i = 0; i < c->brams().size(); ++i) {
        const BramInfo &b = c->brams()[i];
        t.brams[i].rdAddr = slot[b.rdAddr];
        t.brams[i].wrEn = slot[b.wrEn];
        t.brams[i].wrAddr = slot[b.wrAddr];
        t.brams[i].wrData = slot[b.wrData];
    }

    t.nodeSlot.resize(circuit.nodes().size());
    for (size_t i = 0; i < t.nodeSlot.size(); ++i) {
        NodeId m = source_map[i];
        t.nodeSlot[i] = m == kNoNode ? -1 : slot[m];
    }
    t.outputSlots.reserve(c->outputs().size());
    for (const auto &o : c->outputs())
        t.outputSlots.push_back(o.node == kNoNode ? -1 : slot[o.node]);
    t.sourceNodes = circuit.nodes().size();
    uint64_t remaining = t.ops.size() + t.constSlots.size() +
                         c->inputs().size() + c->regs().size() +
                         c->brams().size();
    t.nodesEliminated = remaining < t.sourceNodes ? t.sourceNodes - remaining
                                                  : 0;
    if (opt_result) {
        t.optSourceNodes = opt_result->stats.sourceNodes;
        t.optResultNodes = opt_result->stats.resultNodes;
        t.optDeadNodes = opt_result->stats.deadNodes;
    } else {
        t.optSourceNodes = circuit.nodes().size();
        t.optResultNodes = circuit.nodes().size();
        t.optDeadNodes = 0;
    }
    return t;
}

uint64_t
TapeProgram::contentHash() const
{
    // FNV-1a over every field that affects evaluation, mixed field by
    // field (never via memcpy of the structs: padding bytes are
    // indeterminate and would poison the hash).
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    auto mixSlot = [&](int32_t s) { mix(uint64_t(uint32_t(s))); };
    mix(uint64_t(numSlots));
    mix(uint64_t(fits32));
    mix(ops.size());
    for (const TapeOp &op : ops) {
        mix(uint64_t(op.op) | uint64_t(op.sa) << 8 | uint64_t(op.sb) << 16);
        mix(uint64_t(uint32_t(op.dst)) | uint64_t(uint32_t(op.a)) << 32);
        mix(uint64_t(uint32_t(op.b)) | uint64_t(uint32_t(op.c)) << 32);
        mix(op.imm);
    }
    mix(constSlots.size());
    for (const auto &[s, v] : constSlots) {
        mixSlot(s);
        mix(v);
    }
    mix(inputSlot.size());
    for (int32_t s : inputSlot)
        mixSlot(s);
    mix(outputSlots.size());
    for (int32_t s : outputSlots)
        mixSlot(s);
    for (int w : inputWidth)
        mix(uint64_t(w));
    mix(regs.size());
    for (const RegSpec &r : regs) {
        mixSlot(r.next);
        mixSlot(r.enable);
        mixSlot(r.out);
        mix(r.init);
    }
    mix(brams.size());
    for (const BramSpec &b : brams) {
        mixSlot(b.rdAddr);
        mixSlot(b.wrEn);
        mixSlot(b.wrAddr);
        mixSlot(b.wrData);
        mixSlot(b.rdData);
        mix(uint64_t(b.elements));
    }
    return h;
}

int32_t
TapeProgram::slotOf(NodeId source_node) const
{
    int32_t s = nodeSlot.at(source_node);
    if (s < 0)
        panic("rtl: tape: node ", source_node,
              " was eliminated and has no slot");
    return s;
}

TapeSimulator::TapeSimulator(std::shared_ptr<const TapeProgram> tape)
    : tape_(std::move(tape))
{
    slots_.resize(tape_->numSlots, 0);
    regValues_.resize(tape_->regs.size(), 0);
    for (const auto &b : tape_->brams)
        bramMems_.emplace_back(b.elements, 0);
    latchTmp_.resize(tape_->brams.size(), 0);
    reset();
}

TapeSimulator::TapeSimulator(const Circuit &circuit, bool optimize)
    : TapeSimulator(std::make_shared<const TapeProgram>(
          TapeProgram::compile(circuit, optimize)))
{
}

void
TapeSimulator::reset()
{
    std::fill(slots_.begin(), slots_.end(), 0);
    for (const auto &[s, v] : tape_->constSlots)
        slots_[s] = v;
    for (size_t i = 0; i < tape_->regs.size(); ++i) {
        regValues_[i] = tape_->regs[i].init;
        slots_[tape_->regs[i].out] = tape_->regs[i].init;
    }
    for (auto &mem : bramMems_)
        std::fill(mem.begin(), mem.end(), 0);
    cycles_ = 0;
}

void
TapeSimulator::step()
{
    const TapeProgram &t = *tape_;
    // BRAM reads latch before writes land (read-first), and nothing is
    // published into a slot until every consumer of this cycle's comb
    // values (other BRAM ports, register next/enable) has been read.
    for (size_t i = 0; i < t.brams.size(); ++i) {
        const auto &b = t.brams[i];
        uint64_t rd_addr = slots_[b.rdAddr];
        latchTmp_[i] = rd_addr < b.elements ? bramMems_[i][rd_addr] : 0;
        if (slots_[b.wrEn] != 0) {
            uint64_t wr_addr = slots_[b.wrAddr];
            if (wr_addr < b.elements)
                bramMems_[i][wr_addr] = slots_[b.wrData];
        }
    }
    for (size_t i = 0; i < t.regs.size(); ++i) {
        const auto &r = t.regs[i];
        if (r.enable < 0 || slots_[r.enable] != 0)
            regValues_[i] = slots_[r.next];
    }
    for (size_t i = 0; i < t.brams.size(); ++i)
        slots_[t.brams[i].rdData] = latchTmp_[i];
    for (size_t i = 0; i < t.regs.size(); ++i)
        slots_[t.regs[i].out] = regValues_[i];
    ++cycles_;
}

uint64_t
TapeSimulator::bramWord(int bram_index, int addr) const
{
    const auto &mem = bramMems_.at(bram_index);
    if (addr < 0 || addr >= static_cast<int>(mem.size()))
        panic("rtl: tape: bramWord address out of range");
    return mem[addr];
}

} // namespace rtl
} // namespace fleet
