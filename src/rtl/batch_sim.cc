#include "rtl/batch_sim.h"

#include <algorithm>
#include <type_traits>

#include "rtl/jit.h"
#include "util/logging.h"

namespace fleet {
namespace rtl {

namespace {

/**
 * The SoA sweeps below are compiled as multi-versioned functions where
 * the toolchain supports it: GCC/Clang emit default, AVX2 and AVX-512
 * clones plus an ifunc resolver, so a single portable binary picks the
 * widest vector sweep the host CPU supports at load time. This is
 * deliberately *not* a global -march flag: only these leaf functions
 * are specialized, so no inline/COMDAT symbol compiled for a wider ISA
 * can leak into translation units that must stay baseline.
 */
#if defined(__x86_64__) && defined(__gnu_linux__) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(__SANITIZE_THREAD__)
#define FLEET_BATCH_TARGET_CLONES \
    __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define FLEET_BATCH_TARGET_CLONES
#endif

/**
 * One op-tape sweep over all lanes. T is the lane element type
 * (TapeProgram::fits32 -> uint32_t); semantics match evalTapeOps()
 * bit-for-bit, with the 64-bit-specific guards rebased onto EB. Marked
 * always_inline so each target_clones wrapper below recompiles the
 * whole switch for its vector ISA.
 */
template <typename T>
[[gnu::always_inline]] inline void
evalOpsBatchedT(const TapeOp *ops, size_t num_ops, T *base, const int L)
{
    constexpr int EB = int(sizeof(T)) * 8;
    constexpr int RB = 64 - EB; ///< Sign-shift rebase (amounts are 64-based).
    using S = std::make_signed_t<T>;
    for (size_t i = 0; i < num_ops; ++i) {
        const TapeOp &op = ops[i];
        T *__restrict dst = base + size_t(op.dst) * L;
        const T *__restrict A = base + size_t(op.a) * L;
        const T *__restrict B = base + size_t(op.b) * L;
        const T imm = T(op.imm);
        switch (op.op) {
          case TapeOpcode::BinAdd:
            for (int l = 0; l < L; ++l) dst[l] = (A[l] + B[l]) & imm;
            break;
          case TapeOpcode::BinSub:
            for (int l = 0; l < L; ++l) dst[l] = (A[l] - B[l]) & imm;
            break;
          case TapeOpcode::BinMul:
            for (int l = 0; l < L; ++l) dst[l] = (A[l] * B[l]) & imm;
            break;
          case TapeOpcode::BinAnd:
            for (int l = 0; l < L; ++l) dst[l] = A[l] & B[l];
            break;
          case TapeOpcode::BinOr:
            for (int l = 0; l < L; ++l) dst[l] = A[l] | B[l];
            break;
          case TapeOpcode::BinXor:
            for (int l = 0; l < L; ++l) dst[l] = A[l] ^ B[l];
            break;
          case TapeOpcode::BinShlC: {
            // Constant shift: hoist the >= EB guard out of the lane loop.
            if (op.sa >= EB) {
                for (int l = 0; l < L; ++l) dst[l] = 0;
            } else {
                const int s = op.sa;
                for (int l = 0; l < L; ++l) dst[l] = (A[l] << s) & imm;
            }
            break;
          }
          case TapeOpcode::BinShrC: {
            if (op.sa >= EB) {
                for (int l = 0; l < L; ++l) dst[l] = 0;
            } else {
                const int s = op.sa;
                for (int l = 0; l < L; ++l) dst[l] = A[l] >> s;
            }
            break;
          }
          case TapeOpcode::BinShl: {
            // op.sa (node width) may exceed EB under demanded-width
            // narrowing; the low EB bits are 0 for any shift >= EB.
            const T w = op.sa >= EB ? T(EB) : T(op.sa);
            for (int l = 0; l < L; ++l)
                dst[l] = B[l] >= w ? T(0) : T((A[l] << B[l]) & imm);
            break;
          }
          case TapeOpcode::BinShr:
            for (int l = 0; l < L; ++l)
                dst[l] = B[l] >= T(EB) ? T(0) : T(A[l] >> B[l]);
            break;
          case TapeOpcode::BinEq:
            for (int l = 0; l < L; ++l) dst[l] = A[l] == B[l];
            break;
          case TapeOpcode::BinNe:
            for (int l = 0; l < L; ++l) dst[l] = A[l] != B[l];
            break;
          case TapeOpcode::BinUlt:
            for (int l = 0; l < L; ++l) dst[l] = A[l] < B[l];
            break;
          case TapeOpcode::BinUle:
            for (int l = 0; l < L; ++l) dst[l] = A[l] <= B[l];
            break;
          case TapeOpcode::BinUgt:
            for (int l = 0; l < L; ++l) dst[l] = A[l] > B[l];
            break;
          case TapeOpcode::BinUge:
            for (int l = 0; l < L; ++l) dst[l] = A[l] >= B[l];
            break;
          case TapeOpcode::BinSlt: {
            const int sa = op.sa - RB, sb = op.sb - RB;
            for (int l = 0; l < L; ++l)
                dst[l] = (S(T(A[l] << sa)) >> sa) < (S(T(B[l] << sb)) >> sb);
            break;
          }
          case TapeOpcode::BinSle: {
            const int sa = op.sa - RB, sb = op.sb - RB;
            for (int l = 0; l < L; ++l)
                dst[l] = (S(T(A[l] << sa)) >> sa) <= (S(T(B[l] << sb)) >> sb);
            break;
          }
          case TapeOpcode::BinSgt: {
            const int sa = op.sa - RB, sb = op.sb - RB;
            for (int l = 0; l < L; ++l)
                dst[l] = (S(T(A[l] << sa)) >> sa) > (S(T(B[l] << sb)) >> sb);
            break;
          }
          case TapeOpcode::BinSge: {
            const int sa = op.sa - RB, sb = op.sb - RB;
            for (int l = 0; l < L; ++l)
                dst[l] = (S(T(A[l] << sa)) >> sa) >= (S(T(B[l] << sb)) >> sb);
            break;
          }
          case TapeOpcode::BinLAnd:
            for (int l = 0; l < L; ++l)
                dst[l] = T(A[l] != 0) & T(B[l] != 0);
            break;
          case TapeOpcode::BinLOr:
            for (int l = 0; l < L; ++l)
                dst[l] = T(A[l] != 0) | T(B[l] != 0);
            break;
          case TapeOpcode::UnNot:
            for (int l = 0; l < L; ++l) dst[l] = ~A[l] & imm;
            break;
          case TapeOpcode::UnLNot:
            for (int l = 0; l < L; ++l) dst[l] = A[l] == 0;
            break;
          case TapeOpcode::UnNeg:
            for (int l = 0; l < L; ++l) dst[l] = (T(0) - A[l]) & imm;
            break;
          case TapeOpcode::Mux: {
            const T *__restrict C = base + size_t(op.c) * L;
            for (int l = 0; l < L; ++l)
                dst[l] = C[l] != 0 ? A[l] : B[l];
            break;
          }
          case TapeOpcode::Slice: {
            const int s = op.sa;
            for (int l = 0; l < L; ++l) dst[l] = (A[l] >> s) & imm;
            break;
          }
          case TapeOpcode::Concat: {
            if (op.sa >= EB) {
                for (int l = 0; l < L; ++l) dst[l] = B[l];
            } else {
                const int s = op.sa;
                for (int l = 0; l < L; ++l) dst[l] = (A[l] << s) | B[l];
            }
            break;
          }

          // Lane-uniform variants: the flagged operand is a constant
          // slot, so every lane holds the same value — read it once and
          // let the vectorizer broadcast it, instead of streaming a
          // redundant element-per-lane operand through the cache.
          case TapeOpcode::BinAddU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = (A[l] + bb) & imm;
            break;
          }
          case TapeOpcode::BinSubU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = (A[l] - bb) & imm;
            break;
          }
          case TapeOpcode::BinMulU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = (A[l] * bb) & imm;
            break;
          }
          case TapeOpcode::BinAndU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = A[l] & bb;
            break;
          }
          case TapeOpcode::BinOrU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = A[l] | bb;
            break;
          }
          case TapeOpcode::BinXorU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = A[l] ^ bb;
            break;
          }
          case TapeOpcode::BinEqU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = A[l] == bb;
            break;
          }
          case TapeOpcode::BinNeU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = A[l] != bb;
            break;
          }
          case TapeOpcode::BinUltU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = A[l] < bb;
            break;
          }
          case TapeOpcode::BinUleU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = A[l] <= bb;
            break;
          }
          case TapeOpcode::BinUgtU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = A[l] > bb;
            break;
          }
          case TapeOpcode::BinUgeU: {
            const T bb = B[0];
            for (int l = 0; l < L; ++l) dst[l] = A[l] >= bb;
            break;
          }
          case TapeOpcode::MuxAU: {
            const T *__restrict C = base + size_t(op.c) * L;
            const T aa = A[0];
            for (int l = 0; l < L; ++l)
                dst[l] = C[l] != 0 ? aa : B[l];
            break;
          }
          case TapeOpcode::MuxBU: {
            const T *__restrict C = base + size_t(op.c) * L;
            const T bb = B[0];
            for (int l = 0; l < L; ++l)
                dst[l] = C[l] != 0 ? A[l] : bb;
            break;
          }
          case TapeOpcode::MuxU2: {
            const T *__restrict C = base + size_t(op.c) * L;
            const T aa = A[0], bb = B[0];
            for (int l = 0; l < L; ++l)
                dst[l] = C[l] != 0 ? aa : bb;
            break;
          }
        }
    }
}

FLEET_BATCH_TARGET_CLONES void
evalOpsBatched64(const TapeOp *ops, size_t num_ops, uint64_t *base,
                 const int L)
{
    evalOpsBatchedT<uint64_t>(ops, num_ops, base, L);
}

FLEET_BATCH_TARGET_CLONES void
evalOpsBatched32(const TapeOp *ops, size_t num_ops, uint32_t *base,
                 const int L)
{
    evalOpsBatchedT<uint32_t>(ops, num_ops, base, L);
}

template <typename T>
[[gnu::always_inline]] inline void
stepBatchedT(const TapeProgram &t, T *slots, T *reg_values,
             std::vector<AlignedVec<T>> &bram_mems, T *latch_tmp,
             const int L, int lane_lo, int lane_hi)
{
    // Same commit ordering as TapeSimulator::step(): BRAM reads latch
    // first (read-first semantics) and no slot is overwritten until
    // every consumer of the pre-edge comb values has been read.
    for (size_t i = 0; i < t.brams.size(); ++i) {
        const auto &b = t.brams[i];
        const T *rd_addr = &slots[size_t(b.rdAddr) * L];
        const T *wr_en = &slots[size_t(b.wrEn) * L];
        const T *wr_addr = &slots[size_t(b.wrAddr) * L];
        const T *wr_data = &slots[size_t(b.wrData) * L];
        auto &mem = bram_mems[i];
        T *latch = &latch_tmp[i * L];
        for (int l = lane_lo; l < lane_hi; ++l) {
            latch[l] = rd_addr[l] < b.elements
                           ? mem[size_t(rd_addr[l]) * L + l]
                           : T(0);
            if (wr_en[l] != 0 && wr_addr[l] < b.elements)
                mem[size_t(wr_addr[l]) * L + l] = wr_data[l];
        }
    }
    for (size_t i = 0; i < t.regs.size(); ++i) {
        const auto &r = t.regs[i];
        const T *next = &slots[size_t(r.next) * L];
        T *rv = &reg_values[i * L];
        if (r.enable < 0) {
            for (int l = lane_lo; l < lane_hi; ++l)
                rv[l] = next[l];
        } else {
            const T *en = &slots[size_t(r.enable) * L];
            for (int l = lane_lo; l < lane_hi; ++l)
                if (en[l] != 0)
                    rv[l] = next[l];
        }
    }
    // Publish: BRAM latches, then register outputs.
    for (size_t i = 0; i < t.brams.size(); ++i) {
        T *out = &slots[size_t(t.brams[i].rdData) * L];
        const T *latch = &latch_tmp[i * L];
        for (int l = lane_lo; l < lane_hi; ++l)
            out[l] = latch[l];
    }
    for (size_t i = 0; i < t.regs.size(); ++i) {
        T *out = &slots[size_t(t.regs[i].out) * L];
        const T *rv = &reg_values[i * L];
        for (int l = lane_lo; l < lane_hi; ++l)
            out[l] = rv[l];
    }
}

FLEET_BATCH_TARGET_CLONES void
stepBatched64(const TapeProgram &t, uint64_t *slots, uint64_t *reg_values,
              std::vector<AlignedVec<uint64_t>> &bram_mems,
              uint64_t *latch_tmp, const int L, int lane_lo, int lane_hi)
{
    stepBatchedT<uint64_t>(t, slots, reg_values, bram_mems, latch_tmp, L,
                           lane_lo, lane_hi);
}

FLEET_BATCH_TARGET_CLONES void
stepBatched32(const TapeProgram &t, uint32_t *slots, uint32_t *reg_values,
              std::vector<AlignedVec<uint32_t>> &bram_mems,
              uint32_t *latch_tmp, const int L, int lane_lo, int lane_hi)
{
    stepBatchedT<uint32_t>(t, slots, reg_values, bram_mems, latch_tmp, L,
                           lane_lo, lane_hi);
}

template <typename T>
void
resetLaneT(const TapeProgram &t, int lanes, int lane, AlignedVec<T> &slots,
           AlignedVec<T> &reg_values, std::vector<AlignedVec<T>> &bram_mems)
{
    for (int32_t s = 0; s < t.numSlots; ++s)
        slots[size_t(s) * lanes + lane] = 0;
    for (const auto &[s, v] : t.constSlots)
        slots[size_t(s) * lanes + lane] = T(v);
    for (size_t i = 0; i < t.regs.size(); ++i) {
        reg_values[i * lanes + lane] = T(t.regs[i].init);
        slots[size_t(t.regs[i].out) * lanes + lane] = T(t.regs[i].init);
    }
    for (size_t i = 0; i < t.brams.size(); ++i) {
        auto &mem = bram_mems[i];
        for (uint32_t a = 0; a < t.brams[i].elements; ++a)
            mem[size_t(a) * lanes + lane] = 0;
    }
}

} // namespace

BatchSimulator::BatchSimulator(std::shared_ptr<const TapeProgram> tape,
                               int lanes)
    : tape_(std::move(tape)), lanes_(lanes), elem32_(tape_->fits32)
{
    if (lanes_ < 1)
        panic("rtl: batch: lane count must be >= 1");
    if (elem32_) {
        slots32_.resize(size_t(tape_->numSlots) * lanes_, 0);
        regValues32_.resize(tape_->regs.size() * lanes_, 0);
        for (const auto &b : tape_->brams)
            bramMems32_.emplace_back(size_t(b.elements) * lanes_, 0);
        latchTmp32_.resize(tape_->brams.size() * lanes_, 0);
    } else {
        slots64_.resize(size_t(tape_->numSlots) * lanes_, 0);
        regValues64_.resize(tape_->regs.size() * lanes_, 0);
        for (const auto &b : tape_->brams)
            bramMems64_.emplace_back(size_t(b.elements) * lanes_, 0);
        latchTmp64_.resize(tape_->brams.size() * lanes_, 0);
    }
    reset();
}

void
BatchSimulator::reset()
{
    for (int l = 0; l < lanes_; ++l)
        resetLane(l);
}

void
BatchSimulator::resetLane(int lane)
{
    if (elem32_)
        resetLaneT(*tape_, lanes_, lane, slots32_, regValues32_, bramMems32_);
    else
        resetLaneT(*tape_, lanes_, lane, slots64_, regValues64_, bramMems64_);
}

void
BatchSimulator::attachJit(std::shared_ptr<const JitProgram> jit)
{
    if (!jit)
        panic("rtl: batch: attachJit(nullptr)");
    if (jit->lanes() != lanes_ || jit->elementBits() != elementBits() ||
        jit->key() != JitProgram::cacheKey(*tape_, lanes_))
        panic("rtl: batch: jit kernel does not match this tape/lanes");
    jit_ = std::move(jit);
    bramPtrs_.clear();
    if (elem32_)
        for (auto &mem : bramMems32_)
            bramPtrs_.push_back(mem.data());
    else
        for (auto &mem : bramMems64_)
            bramPtrs_.push_back(mem.data());
}

void
BatchSimulator::evalAll()
{
    if (jit_) {
        jit_->eval(elem32_ ? (void *)slots32_.data()
                           : (void *)slots64_.data(),
                   0, lanes_);
        return;
    }
    if (elem32_)
        evalOpsBatched32(tape_->ops.data(), tape_->ops.size(),
                         slots32_.data(), lanes_);
    else
        evalOpsBatched64(tape_->ops.data(), tape_->ops.size(),
                         slots64_.data(), lanes_);
}

void
BatchSimulator::evalLane(int lane)
{
    if (jit_) {
        jit_->eval(elem32_ ? (void *)slots32_.data()
                           : (void *)slots64_.data(),
                   lane, lane + 1);
        return;
    }
    if (elem32_)
        evalTapeOps<uint32_t>(tape_->ops, slots32_.data(), lanes_, lane);
    else
        evalTapeOps<uint64_t>(tape_->ops, slots64_.data(), lanes_, lane);
}

void
BatchSimulator::stepRange(int lane_lo, int lane_hi)
{
    if (jit_) {
        if (elem32_)
            jit_->step(slots32_.data(), regValues32_.data(),
                       bramPtrs_.data(), lane_lo, lane_hi);
        else
            jit_->step(slots64_.data(), regValues64_.data(),
                       bramPtrs_.data(), lane_lo, lane_hi);
        return;
    }
    if (elem32_)
        stepBatched32(*tape_, slots32_.data(), regValues32_.data(),
                      bramMems32_, latchTmp32_.data(), lanes_, lane_lo,
                      lane_hi);
    else
        stepBatched64(*tape_, slots64_.data(), regValues64_.data(),
                      bramMems64_, latchTmp64_.data(), lanes_, lane_lo,
                      lane_hi);
}

void
BatchSimulator::step()
{
    stepRange(0, lanes_);
}

void
BatchSimulator::stepLane(int lane)
{
    stepRange(lane, lane + 1);
}

uint64_t
BatchSimulator::regValue(int lane, int reg_index) const
{
    // Read the register's published out slot, not the regValues_
    // staging row: the two are equal after every reset and clock edge
    // (publish copies staging to the slot), and reading the slot lets
    // the native jit step skip the staging array entirely when no
    // register is chained off another register's output (rtl/jit.cc).
    size_t idx =
        size_t(tape_->regs.at(size_t(reg_index)).out) * lanes_ + lane;
    return elem32_ ? slots32_.at(idx) : slots64_.at(idx);
}

uint64_t
BatchSimulator::bramWord(int lane, int bram_index, int addr) const
{
    const auto &spec = tape_->brams.at(bram_index);
    if (addr < 0 || uint32_t(addr) >= spec.elements)
        panic("rtl: batch: bramWord address out of range");
    size_t idx = size_t(addr) * lanes_ + lane;
    return elem32_ ? bramMems32_[bram_index][idx]
                   : bramMems64_[bram_index][idx];
}

} // namespace rtl
} // namespace fleet
