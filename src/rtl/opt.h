#ifndef FLEET_RTL_OPT_H
#define FLEET_RTL_OPT_H

/**
 * @file
 * Simulation-side circuit optimizer. Rebuilds a Circuit through the
 * public construction API, applying:
 *
 *   - dead-node elimination from the observable roots (outputs, register
 *     next/enable, BRAM ports);
 *   - constant folding (the make* constructors already fold; rebuilding
 *     re-runs them over operands that *became* constant);
 *   - identity simplification (x+0, x&0, x^x, mux(c,a,a), double
 *     negation, slice-of-slice / slice-of-concat flattening, ...);
 *   - width-aware strength reduction (multiply by a power of two becomes
 *     a shift at the product width, oversized constant shifts become 0).
 *
 * Every rewrite preserves the exact width and per-cycle value of the
 * node it replaces, so the optimized circuit is observably equivalent to
 * the source: same outputs, same register values, same BRAM contents on
 * every cycle (tests/rtl_opt_test.cc enforces this against the
 * interpreter on randomized circuits).
 *
 * The optimizer exists purely for simulation speed (rtl/tape.h compiles
 * the optimized DAG). Verilog emission and the structural-hash area
 * model always read the *unoptimized* circuit — the area accounting must
 * reflect what synthesis sees, not what the simulator shortcuts.
 * Structural elements (input ports, registers, BRAMs) are recreated in
 * source order, so port/reg/BRAM indices are stable across optimization.
 */

#include <cstdint>
#include <vector>

#include "rtl/circuit.h"

namespace fleet {
namespace rtl {

struct OptResult
{
    Circuit circuit;

    /**
     * Source NodeId -> optimized NodeId. kNoNode for eliminated (dead)
     * nodes. Mapped nodes have identical width and identical value on
     * every cycle.
     */
    std::vector<NodeId> nodeMap;

    struct Stats
    {
        uint64_t sourceNodes = 0;
        uint64_t resultNodes = 0;
        uint64_t deadNodes = 0; ///< Source nodes unreachable from roots.
    };
    Stats stats;
};

/** Optimize a validated circuit. The input circuit is not modified. */
OptResult optimize(const Circuit &in);

} // namespace rtl
} // namespace fleet

#endif // FLEET_RTL_OPT_H
