#ifndef FLEET_RTL_CIRCUIT_H
#define FLEET_RTL_CIRCUIT_H

/**
 * @file
 * Register-transfer-level intermediate representation. The Fleet compiler
 * lowers a processing-unit program into a Circuit: a DAG of combinational
 * nodes plus registers (with optional clock enables) and BRAMs (one read
 * port with one-cycle latency, one write port — the primitive the paper's
 * generated RTL targets).
 *
 * Nodes are created bottom-up, so the node vector is always in topological
 * order and the interpreter (rtl/sim.h) can evaluate it in a single
 * forward pass per clock cycle. The circuit can also be pretty-printed as
 * synthesizable Verilog (rtl/verilog.h), mirroring the paper's Figure 4.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/ops.h"

namespace fleet {
namespace rtl {

/** Index of a combinational node within a circuit. -1 means "none". */
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

enum class NodeKind
{
    Const,      ///< Literal.
    Input,      ///< Module input port.
    RegOut,     ///< Current value of a register.
    BramRdData, ///< Read data latched by a BRAM (one-cycle latency).
    Bin,
    Un,
    Mux,        ///< c ? a : b (select is a non-zero test).
    Slice,
    Concat,
};

struct Node
{
    NodeKind kind;
    int width;
    uint64_t value = 0; ///< Const payload.
    int index = -1;     ///< Port/reg/BRAM index, or slice low bit.
    BinOp binOp = BinOp::Add;
    UnOp unOp = UnOp::Not;
    NodeId a = kNoNode, b = kNoNode, c = kNoNode;
};

struct RegInfo
{
    std::string name;
    int width;
    uint64_t init;
    NodeId next = kNoNode;   ///< Next value (required before simulation).
    NodeId enable = kNoNode; ///< Clock enable; kNoNode = always enabled.
    NodeId out = kNoNode;    ///< The RegOut node reading this register.
};

struct BramInfo
{
    std::string name;
    int elements;
    int width;
    int addrWidth;
    NodeId rdAddr = kNoNode;
    NodeId wrEn = kNoNode;
    NodeId wrAddr = kNoNode;
    NodeId wrData = kNoNode;
    NodeId rdData = kNoNode; ///< The BramRdData node.
};

struct PortInfo
{
    std::string name;
    int width;
    NodeId node;
};

struct OutputInfo
{
    std::string name;
    NodeId node;
};

/**
 * A synthesizable circuit. Build with the add/make methods; finalize
 * with validate() before handing to the interpreter or Verilog emitter.
 */
class Circuit
{
  public:
    explicit Circuit(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /// @name Structural elements.
    /// @{
    NodeId addInput(const std::string &name, int width);
    int addReg(const std::string &name, int width, uint64_t init);
    NodeId regOut(int reg_index) const;
    void setRegNext(int reg_index, NodeId next, NodeId enable = kNoNode);
    int addBram(const std::string &name, int elements, int width);
    NodeId bramRdData(int bram_index) const;
    void setBramPorts(int bram_index, NodeId rd_addr, NodeId wr_en,
                      NodeId wr_addr, NodeId wr_data);
    void addOutput(const std::string &name, NodeId node);
    /// @}

    /// @name Combinational node constructors.
    /// @{
    NodeId makeConst(uint64_t value, int width);
    NodeId makeBin(BinOp op, NodeId a, NodeId b);
    NodeId makeUn(UnOp op, NodeId a);
    NodeId makeMux(NodeId cond, NodeId a, NodeId b);
    NodeId makeSlice(NodeId a, int hi, int lo);
    NodeId makeConcat(NodeId hi, NodeId lo);
    /** Zero-extend or truncate to an exact width. */
    NodeId makeResize(NodeId a, int width);
    /** OR of a list of 1-bit nodes; constant 0 if empty. */
    NodeId makeOrReduce(const std::vector<NodeId> &nodes);
    NodeId makeAnd(NodeId a, NodeId b);
    NodeId makeNot(NodeId a);
    /// @}

    /** Check that every register/BRAM is fully wired. Throws on error. */
    void validate() const;

    const std::vector<Node> &nodes() const { return nodes_; }
    const std::vector<RegInfo> &regs() const { return regs_; }
    const std::vector<BramInfo> &brams() const { return brams_; }
    const std::vector<PortInfo> &inputs() const { return inputs_; }
    const std::vector<OutputInfo> &outputs() const { return outputs_; }

    int width(NodeId id) const { return nodes_.at(id).width; }

    /** Find an input port index by name; throws if absent. */
    int inputIndex(const std::string &name) const;
    /** Find an output by name; throws if absent. */
    NodeId outputNode(const std::string &name) const;

  private:
    NodeId addNode(Node node);
    void checkOperand(NodeId id) const;

    std::string name_;
    std::vector<Node> nodes_;
    /** Structural-hashing (CSE) table: all node kinds are pure functions
     * of their operands/indices, so identical nodes are shared — as
     * synthesis would, keeping the interpreter and the area model honest
     * about replicated subexpressions. */
    std::unordered_map<uint64_t, std::vector<NodeId>> hashTable_;
    std::vector<RegInfo> regs_;
    std::vector<BramInfo> brams_;
    std::vector<PortInfo> inputs_;
    std::vector<OutputInfo> outputs_;
};

} // namespace rtl
} // namespace fleet

#endif // FLEET_RTL_CIRCUIT_H
