#include "rtl/circuit.h"

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace rtl {

namespace {

bool
sameNode(const Node &a, const Node &b)
{
    return a.kind == b.kind && a.width == b.width && a.value == b.value &&
           a.index == b.index && a.binOp == b.binOp && a.unOp == b.unOp &&
           a.a == b.a && a.b == b.b && a.c == b.c;
}

uint64_t
hashNode(const Node &n)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(uint64_t(n.kind));
    mix(uint64_t(n.width));
    mix(n.value);
    mix(uint64_t(int64_t(n.index)));
    mix(uint64_t(n.binOp));
    mix(uint64_t(n.unOp));
    mix(uint64_t(int64_t(n.a)));
    mix(uint64_t(int64_t(n.b)));
    mix(uint64_t(int64_t(n.c)));
    return h;
}

} // namespace

NodeId
Circuit::addNode(Node node)
{
    if (node.width < 1 || node.width > kMaxValueWidth)
        panic("rtl: node width ", node.width, " out of range");
    // Structural hashing (CSE). Input/RegOut/BramRdData nodes are also
    // keyed purely by their index, so sharing them is sound; ports and
    // state elements must therefore create their node *before* any
    // lookup could alias (they do: each addInput/addReg/addBram call
    // creates a node with a fresh index).
    uint64_t h = hashNode(node);
    auto it = hashTable_.find(h);
    if (it != hashTable_.end()) {
        for (NodeId candidate : it->second)
            if (sameNode(nodes_[candidate], node))
                return candidate;
    }
    nodes_.push_back(node);
    NodeId id = static_cast<NodeId>(nodes_.size() - 1);
    hashTable_[h].push_back(id);
    return id;
}

void
Circuit::checkOperand(NodeId id) const
{
    if (id < 0 || id >= static_cast<NodeId>(nodes_.size()))
        panic("rtl: operand node ", id, " does not exist yet (circuit "
              "construction must be bottom-up)");
}

NodeId
Circuit::addInput(const std::string &name, int width)
{
    Node n;
    n.kind = NodeKind::Input;
    n.width = width;
    n.index = static_cast<int>(inputs_.size());
    NodeId id = addNode(std::move(n));
    inputs_.push_back(PortInfo{name, width, id});
    return id;
}

int
Circuit::addReg(const std::string &name, int width, uint64_t init)
{
    int index = static_cast<int>(regs_.size());
    Node n;
    n.kind = NodeKind::RegOut;
    n.width = width;
    n.index = index;
    NodeId out = addNode(std::move(n));
    regs_.push_back(RegInfo{name, width, truncTo(init, width), kNoNode,
                            kNoNode, out});
    return index;
}

NodeId
Circuit::regOut(int reg_index) const
{
    return regs_.at(reg_index).out;
}

void
Circuit::setRegNext(int reg_index, NodeId next, NodeId enable)
{
    checkOperand(next);
    if (enable != kNoNode)
        checkOperand(enable);
    RegInfo &reg = regs_.at(reg_index);
    if (reg.next != kNoNode)
        panic("rtl: register ", reg.name, " wired twice");
    if (nodes_[next].width != reg.width)
        panic("rtl: register ", reg.name, " next-value width mismatch");
    reg.next = next;
    reg.enable = enable;
}

int
Circuit::addBram(const std::string &name, int elements, int width)
{
    int index = static_cast<int>(brams_.size());
    Node n;
    n.kind = NodeKind::BramRdData;
    n.width = width;
    n.index = index;
    NodeId rd_data = addNode(std::move(n));
    BramInfo bram;
    bram.name = name;
    bram.elements = elements;
    bram.width = width;
    bram.addrWidth = indexWidth(static_cast<uint64_t>(elements));
    bram.rdData = rd_data;
    brams_.push_back(std::move(bram));
    return index;
}

NodeId
Circuit::bramRdData(int bram_index) const
{
    return brams_.at(bram_index).rdData;
}

void
Circuit::setBramPorts(int bram_index, NodeId rd_addr, NodeId wr_en,
                      NodeId wr_addr, NodeId wr_data)
{
    checkOperand(rd_addr);
    checkOperand(wr_en);
    checkOperand(wr_addr);
    checkOperand(wr_data);
    BramInfo &bram = brams_.at(bram_index);
    if (bram.rdAddr != kNoNode)
        panic("rtl: BRAM ", bram.name, " wired twice");
    if (nodes_[wr_data].width != bram.width)
        panic("rtl: BRAM ", bram.name, " write-data width mismatch");
    bram.rdAddr = rd_addr;
    bram.wrEn = wr_en;
    bram.wrAddr = wr_addr;
    bram.wrData = wr_data;
}

void
Circuit::addOutput(const std::string &name, NodeId node)
{
    checkOperand(node);
    outputs_.push_back(OutputInfo{name, node});
}

NodeId
Circuit::makeConst(uint64_t value, int width)
{
    Node n;
    n.kind = NodeKind::Const;
    n.width = width;
    n.value = truncTo(value, width);
    return addNode(std::move(n));
}

NodeId
Circuit::makeBin(BinOp op, NodeId a, NodeId b)
{
    checkOperand(a);
    checkOperand(b);
    // Constant folding: real synthesis removes these, so the area model
    // and interpreter should not pay for them either.
    if (nodes_[a].kind == NodeKind::Const &&
        nodes_[b].kind == NodeKind::Const) {
        return makeConst(evalBinOp(op, nodes_[a].value, nodes_[a].width,
                                   nodes_[b].value, nodes_[b].width),
                         binOpWidth(op, nodes_[a].width, nodes_[b].width));
    }
    // Logical identities with a constant side (gating conditions are
    // frequently conjoined with constant true).
    if (op == BinOp::LAnd || op == BinOp::LOr) {
        for (int swap = 0; swap < 2; ++swap) {
            NodeId k = swap ? b : a;
            NodeId other = swap ? a : b;
            if (nodes_[k].kind != NodeKind::Const)
                continue;
            bool truthy = nodes_[k].value != 0;
            if (op == BinOp::LAnd && !truthy)
                return makeConst(0, 1);
            if (op == BinOp::LOr && truthy)
                return makeConst(1, 1);
            if (nodes_[other].width == 1)
                return other;
            return makeBin(BinOp::Ne, other,
                           makeConst(0, nodes_[other].width));
        }
    }
    Node n;
    n.kind = NodeKind::Bin;
    n.width = binOpWidth(op, nodes_[a].width, nodes_[b].width);
    n.binOp = op;
    n.a = a;
    n.b = b;
    return addNode(std::move(n));
}

NodeId
Circuit::makeUn(UnOp op, NodeId a)
{
    checkOperand(a);
    if (nodes_[a].kind == NodeKind::Const) {
        return makeConst(evalUnOp(op, nodes_[a].value, nodes_[a].width),
                         unOpWidth(op, nodes_[a].width));
    }
    Node n;
    n.kind = NodeKind::Un;
    n.width = unOpWidth(op, nodes_[a].width);
    n.unOp = op;
    n.a = a;
    return addNode(std::move(n));
}

NodeId
Circuit::makeMux(NodeId cond, NodeId a, NodeId b)
{
    checkOperand(cond);
    checkOperand(a);
    checkOperand(b);
    if (nodes_[a].width != nodes_[b].width) {
        int w = std::max(nodes_[a].width, nodes_[b].width);
        a = makeResize(a, w);
        b = makeResize(b, w);
    }
    if (nodes_[cond].kind == NodeKind::Const)
        return nodes_[cond].value != 0 ? a : b;
    Node n;
    n.kind = NodeKind::Mux;
    n.width = nodes_[a].width;
    n.a = a;
    n.b = b;
    n.c = cond;
    return addNode(std::move(n));
}

NodeId
Circuit::makeSlice(NodeId a, int hi, int lo)
{
    checkOperand(a);
    if (lo < 0 || hi < lo || hi >= nodes_[a].width)
        panic("rtl: slice [", hi, ":", lo, "] out of range for width ",
              nodes_[a].width);
    if (nodes_[a].kind == NodeKind::Const)
        return makeConst(bitsOf(nodes_[a].value, lo, hi - lo + 1),
                         hi - lo + 1);
    Node n;
    n.kind = NodeKind::Slice;
    n.width = hi - lo + 1;
    n.index = lo;
    n.a = a;
    return addNode(std::move(n));
}

NodeId
Circuit::makeConcat(NodeId hi, NodeId lo)
{
    checkOperand(hi);
    checkOperand(lo);
    if (nodes_[hi].width + nodes_[lo].width > kMaxValueWidth)
        panic("rtl: concat width exceeds ", kMaxValueWidth);
    Node n;
    n.kind = NodeKind::Concat;
    n.width = nodes_[hi].width + nodes_[lo].width;
    n.a = hi;
    n.b = lo;
    return addNode(std::move(n));
}

NodeId
Circuit::makeResize(NodeId a, int width)
{
    checkOperand(a);
    int wa = nodes_[a].width;
    if (width == wa)
        return a;
    if (width < wa)
        return makeSlice(a, width - 1, 0);
    return makeConcat(makeConst(0, width - wa), a);
}

NodeId
Circuit::makeOrReduce(const std::vector<NodeId> &nodes)
{
    if (nodes.empty())
        return makeConst(0, 1);
    NodeId acc = nodes[0];
    for (size_t i = 1; i < nodes.size(); ++i)
        acc = makeBin(BinOp::LOr, acc, nodes[i]);
    return acc;
}

NodeId
Circuit::makeAnd(NodeId a, NodeId b)
{
    return makeBin(BinOp::LAnd, a, b);
}

NodeId
Circuit::makeNot(NodeId a)
{
    return makeUn(UnOp::LNot, a);
}

void
Circuit::validate() const
{
    for (const auto &reg : regs_) {
        if (reg.next == kNoNode)
            panic("rtl: register ", reg.name, " has no next value");
    }
    for (const auto &bram : brams_) {
        if (bram.rdAddr == kNoNode)
            panic("rtl: BRAM ", bram.name, " is not wired");
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const Node &node = nodes_[i];
        for (NodeId child : {node.a, node.b, node.c}) {
            if (child != kNoNode && child >= static_cast<NodeId>(i)) {
                // Bottom-up construction guarantees children precede
                // parents; a violation indicates a framework bug.
                panic("rtl: circuit ", name_, " is not topologically "
                      "ordered");
            }
        }
    }
}

int
Circuit::inputIndex(const std::string &name) const
{
    for (size_t i = 0; i < inputs_.size(); ++i)
        if (inputs_[i].name == name)
            return static_cast<int>(i);
    panic("rtl: no input port named ", name);
}

NodeId
Circuit::outputNode(const std::string &name) const
{
    for (const auto &out : outputs_)
        if (out.name == name)
            return out.node;
    panic("rtl: no output named ", name);
}

} // namespace rtl
} // namespace fleet
