#include "rtl/opt.h"

#include <bit>

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace rtl {

namespace {

/**
 * Rebuilds the source circuit bottom-up into `out`, simplifying each
 * node as it is constructed. Operands handed to the build* methods are
 * NodeIds in `out` and are already fully simplified, so one forward pass
 * reaches a fixpoint. Every build* method returns a node whose width
 * equals the source node's width (checked by the caller).
 */
class Rebuilder
{
  public:
    explicit Rebuilder(Circuit &out) : out_(out) {}

    NodeId buildBin(BinOp op, NodeId a, NodeId b);
    NodeId buildUn(UnOp op, NodeId a);
    NodeId buildMux(NodeId cond, NodeId a, NodeId b);
    NodeId buildSlice(NodeId a, int lo, int width);
    NodeId buildConcat(NodeId hi, NodeId lo);

  private:
    // Node copies (not references): the make* calls below can grow the
    // node vector and invalidate references.
    Node node(NodeId id) const { return out_.nodes()[id]; }
    bool isConst(NodeId id) const
    {
        return out_.nodes()[id].kind == NodeKind::Const;
    }
    uint64_t cval(NodeId id) const { return out_.nodes()[id].value; }
    int width(NodeId id) const { return out_.width(id); }

    /** Non-zero test of a node, as a 1-bit value. */
    NodeId boolOf(NodeId a)
    {
        if (width(a) == 1)
            return a;
        return out_.makeBin(BinOp::Ne, a, out_.makeConst(0, width(a)));
    }

    Circuit &out_;
};

NodeId
Rebuilder::buildBin(BinOp op, NodeId a, NodeId b)
{
    const int wa = width(a), wb = width(b);
    const int w = binOpWidth(op, wa, wb);

    // Same-operand algebra (CSE makes shared subexpressions a single id,
    // so x - x genuinely arrives with a == b).
    if (a == b) {
        switch (op) {
          case BinOp::Sub:
          case BinOp::Xor:
            return out_.makeConst(0, w);
          case BinOp::And:
          case BinOp::Or:
            return out_.makeResize(a, w);
          case BinOp::Eq:
          case BinOp::Ule:
          case BinOp::Uge:
          case BinOp::Sle:
          case BinOp::Sge:
            return out_.makeConst(1, 1);
          case BinOp::Ne:
          case BinOp::Ult:
          case BinOp::Ugt:
          case BinOp::Slt:
          case BinOp::Sgt:
            return out_.makeConst(0, 1);
          case BinOp::LAnd:
          case BinOp::LOr:
            return boolOf(a);
          default:
            break;
        }
    }

    // Identities / strength reduction with one constant side. (Both
    // sides constant is folded by makeBin itself.)
    for (int swap = 0; swap < 2; ++swap) {
        NodeId k = swap ? a : b;
        NodeId x = swap ? b : a;
        if (!isConst(k) || isConst(x))
            continue;
        const uint64_t c = cval(k);
        const bool k_is_rhs = !swap;
        switch (op) {
          case BinOp::Add:
            if (c == 0)
                return out_.makeResize(x, w);
            break;
          case BinOp::Sub:
            if (c == 0 && k_is_rhs)
                return out_.makeResize(x, w);
            break;
          case BinOp::Or:
            if (c == 0)
                return out_.makeResize(x, w);
            if (c == mask64(w))
                return out_.makeConst(mask64(w), w);
            break;
          case BinOp::Xor:
            if (c == 0)
                return out_.makeResize(x, w);
            if (c == mask64(w) && width(x) == w)
                return out_.makeUn(UnOp::Not, x);
            break;
          case BinOp::And:
            if (c == 0)
                return out_.makeConst(0, w);
            if (c == mask64(w))
                return out_.makeResize(x, w);
            break;
          case BinOp::Mul:
            if (c == 0)
                return out_.makeConst(0, w);
            if (c == 1)
                return out_.makeResize(x, w);
            if (std::has_single_bit(c)) {
                // x * 2^s == (x << s) at the product width.
                int s = std::countr_zero(c);
                return out_.makeBin(BinOp::Shl, out_.makeResize(x, w),
                                    out_.makeConst(uint64_t(s),
                                                   bitsToRepresent(s)));
            }
            break;
          case BinOp::Shl:
            if (k_is_rhs && c == 0)
                return out_.makeResize(x, w);
            if (k_is_rhs && c >= uint64_t(w))
                return out_.makeConst(0, w);
            break;
          case BinOp::Shr:
            if (k_is_rhs && c == 0)
                return out_.makeResize(x, w);
            if (k_is_rhs && c >= uint64_t(wa))
                return out_.makeConst(0, w);
            break;
          case BinOp::Ult:
            if (k_is_rhs && c == 0)
                return out_.makeConst(0, 1); // nothing is < 0 unsigned
            break;
          case BinOp::Uge:
            if (k_is_rhs && c == 0)
                return out_.makeConst(1, 1);
            break;
          case BinOp::Ugt:
            if (k_is_rhs && c >= mask64(width(x)))
                return out_.makeConst(0, 1); // x can't exceed its max
            break;
          case BinOp::Ule:
            if (k_is_rhs && c >= mask64(width(x)))
                return out_.makeConst(1, 1);
            break;
          default:
            break;
        }
    }

    return out_.makeBin(op, a, b);
}

NodeId
Rebuilder::buildUn(UnOp op, NodeId a)
{
    const Node na = node(a);
    if (na.kind == NodeKind::Un && na.unOp == op) {
        switch (op) {
          case UnOp::Not:
          case UnOp::Neg:
            return na.a; // involutions at a fixed width
          case UnOp::LNot:
            // LNot(LNot(x)) == (x != 0).
            return boolOf(na.a);
        }
    }
    return out_.makeUn(op, a);
}

NodeId
Rebuilder::buildMux(NodeId cond, NodeId a, NodeId b)
{
    if (a == b)
        return a;
    // Boolean materialization: mux(c, 1, 0) at width 1 is just bool(c).
    if (width(a) == 1 && isConst(a) && isConst(b)) {
        if (cval(a) == 1 && cval(b) == 0)
            return boolOf(cond);
        if (cval(a) == 0 && cval(b) == 1)
            return out_.makeUn(UnOp::LNot, cond);
    }
    return out_.makeMux(cond, a, b);
}

NodeId
Rebuilder::buildSlice(NodeId a, int lo, int w)
{
    if (lo == 0 && w == width(a))
        return a;
    const Node na = node(a);
    if (na.kind == NodeKind::Slice)
        return buildSlice(na.a, na.index + lo, w);
    if (na.kind == NodeKind::Concat) {
        int wlo = width(na.b);
        if (lo + w <= wlo)
            return buildSlice(na.b, lo, w);
        if (lo >= wlo)
            return buildSlice(na.a, lo - wlo, w);
    }
    return out_.makeSlice(a, lo + w - 1, lo);
}

NodeId
Rebuilder::buildConcat(NodeId hi, NodeId lo)
{
    const int w = width(hi) + width(lo);
    if (isConst(hi) && isConst(lo))
        return out_.makeConst(shl64(cval(hi), width(lo)) | cval(lo), w);
    // Merge stacked zero-extensions: {0, {0, x}} -> {0, x}.
    if (isConst(hi) && cval(hi) == 0) {
        const Node nlo = node(lo);
        if (nlo.kind == NodeKind::Concat && isConst(nlo.a) &&
            cval(nlo.a) == 0)
            return out_.makeConcat(out_.makeConst(0, w - width(nlo.b)),
                                   nlo.b);
    }
    // Rejoin adjacent slices of the same source: {x[h:m+1], x[m:l]}.
    {
        const Node nhi = node(hi), nlo = node(lo);
        if (nhi.kind == NodeKind::Slice && nlo.kind == NodeKind::Slice &&
            nhi.a == nlo.a && nhi.index == nlo.index + nlo.width)
            return buildSlice(nhi.a, nlo.index, w);
    }
    return out_.makeConcat(hi, lo);
}

} // namespace

OptResult
optimize(const Circuit &in)
{
    in.validate();
    const auto &nodes = in.nodes();

    // Liveness: walk backwards from every observable root.
    std::vector<char> live(nodes.size(), 0);
    std::vector<NodeId> stack;
    auto mark = [&](NodeId id) {
        if (id != kNoNode && !live[id]) {
            live[id] = 1;
            stack.push_back(id);
        }
    };
    for (const auto &o : in.outputs())
        mark(o.node);
    for (const auto &r : in.regs()) {
        mark(r.next);
        mark(r.enable);
    }
    for (const auto &b : in.brams()) {
        mark(b.rdAddr);
        mark(b.wrEn);
        mark(b.wrAddr);
        mark(b.wrData);
    }
    while (!stack.empty()) {
        const Node &n = nodes[stack.back()];
        stack.pop_back();
        mark(n.a);
        mark(n.b);
        mark(n.c);
    }

    OptResult res{Circuit(in.name()),
                  std::vector<NodeId>(nodes.size(), kNoNode),
                  {}};
    Circuit &out = res.circuit;
    auto &map = res.nodeMap;

    // Structural elements first, in source order, so port/reg/BRAM
    // indices are identical in the optimized circuit.
    for (const auto &p : in.inputs())
        map[p.node] = out.addInput(p.name, p.width);
    for (const auto &r : in.regs())
        map[r.out] = out.regOut(out.addReg(r.name, r.width, r.init));
    for (const auto &b : in.brams())
        map[b.rdData] =
            out.bramRdData(out.addBram(b.name, b.elements, b.width));

    Rebuilder rb(out);
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (map[i] != kNoNode)
            continue; // structural node, mapped above
        if (!live[i]) {
            ++res.stats.deadNodes;
            continue;
        }
        const Node &n = nodes[i];
        NodeId r = kNoNode;
        switch (n.kind) {
          case NodeKind::Const:
            r = out.makeConst(n.value, n.width);
            break;
          case NodeKind::Bin:
            r = rb.buildBin(n.binOp, map[n.a], map[n.b]);
            break;
          case NodeKind::Un:
            r = rb.buildUn(n.unOp, map[n.a]);
            break;
          case NodeKind::Mux:
            r = rb.buildMux(map[n.c], map[n.a], map[n.b]);
            break;
          case NodeKind::Slice:
            r = rb.buildSlice(map[n.a], n.index, n.width);
            break;
          case NodeKind::Concat:
            r = rb.buildConcat(map[n.a], map[n.b]);
            break;
          case NodeKind::Input:
          case NodeKind::RegOut:
          case NodeKind::BramRdData:
            panic("rtl: opt: unmapped structural node");
        }
        if (out.width(r) != n.width)
            panic("rtl: opt: width changed for node ", NodeId(i), " (",
                  n.width, " -> ", out.width(r), ")");
        map[i] = r;
    }

    for (size_t i = 0; i < in.regs().size(); ++i) {
        const RegInfo &r = in.regs()[i];
        out.setRegNext(static_cast<int>(i), map[r.next],
                       r.enable == kNoNode ? kNoNode : map[r.enable]);
    }
    for (size_t i = 0; i < in.brams().size(); ++i) {
        const BramInfo &b = in.brams()[i];
        out.setBramPorts(static_cast<int>(i), map[b.rdAddr], map[b.wrEn],
                         map[b.wrAddr], map[b.wrData]);
    }
    for (const auto &o : in.outputs())
        out.addOutput(o.name, map[o.node]);

    out.validate();
    res.stats.sourceNodes = nodes.size();
    res.stats.resultNodes = out.nodes().size();
    return res;
}

} // namespace rtl
} // namespace fleet
