#include "rtl/jit.h"

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define FLEET_JIT_SUPPORTED 1
#include <dlfcn.h>
#include <unistd.h>
#endif

#include "util/logging.h"

namespace fleet {
namespace rtl {

namespace {

/** Bumping this invalidates every cached artifact (the key mixes it
 * in), so emitter changes can never resurrect a stale .so. */
constexpr uint64_t kEmitterVersion = 5;
constexpr int kJitAbi = 1;

/**
 * Ops per generated chunk function. Chunking bounds the host
 * compiler's per-function work (one multi-thousand-op loop body makes
 * -O2 superlinear) while keeping loops long enough to amortize the
 * lane-loop overhead; in-chunk consumers still read producer locals,
 * and cross-chunk values go through the slot array (which every op
 * stores to anyway, preserving value() observability).
 *
 * The chunk size is a cache blocking parameter, not just a compile-time
 * knob: each vector iteration of a chunk touches every distinct slot
 * row (lanes * elem bytes each) its ops reference, and the lane loop
 * re-traverses that set lanes/VW times. A chunk therefore wants its
 * working set (~2 rows per op) to stay L1-resident so only the first
 * lane block pays the miss; at 64 ops that is ~128 rows = 64 KiB for 64
 * 64-bit lanes. Big chunks (we shipped 224 at first) blow this out to
 * hundreds of KiB re-streamed from L2/L3 per lane block and end up
 * slower than the op-major interpreter, which streams each row once.
 */
constexpr int kChunkOps = 64;

void
fnvMix(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ull;
    }
}

bool
jitDisabled()
{
    const char *env = std::getenv("FLEET_JIT_DISABLE");
    return env && *env && std::string(env) != "0";
}

std::string
defaultCacheDir()
{
    const char *env = std::getenv("FLEET_JIT_CACHE_DIR");
    if (env && *env)
        return env;
    const char *tmp = std::getenv("TMPDIR");
    std::string base = tmp && *tmp ? tmp : "/tmp";
#ifdef FLEET_JIT_SUPPORTED
    return base + "/fleet-jit-cache-" + std::to_string(uint64_t(getuid()));
#else
    return base + "/fleet-jit-cache";
#endif
}

std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s)
        out += c == '\'' ? std::string("'\\''") : std::string(1, c);
    out += "'";
    return out;
}

bool
commandWorks(const std::string &cc)
{
    std::string cmd = "command -v " + shellQuote(cc) + " >/dev/null 2>&1";
    return std::system(cmd.c_str()) == 0;
}

std::string
discoverCompiler(const JitOptions &opts, Status *why)
{
    std::vector<std::string> cands;
    if (!opts.compiler.empty()) {
        cands.push_back(opts.compiler);
    } else if (const char *env = std::getenv("FLEET_JIT_CC");
               env && *env) {
        cands.push_back(env);
    } else {
        // C++ drivers first: the emitted kernels use GNU vector
        // ternaries (element-wise ?:), which gcc only accepts in C++
        // mode (clang accepts them in C too). The source is compiled
        // with -x c++ regardless of the driver name.
        cands = {"c++", "g++", "clang++", "cc", "gcc", "clang"};
    }
    for (const auto &c : cands)
        if (commandWorks(c))
            return c;
    std::string tried;
    for (const auto &c : cands)
        tried += (tried.empty() ? "" : ", ") + c;
    *why = Status::make(StatusCode::InvalidArgument,
                        "no working host compiler (tried: " + tried + ")");
    return "";
}

/** The base (non-lane-uniform) semantics of an opcode. The emitter
 * inlines constant-slot operands as literals for every op, so the U
 * distinction — a batch-interpreter load-hoisting hint — is moot. */
TapeOpcode
baseOpcode(TapeOpcode op)
{
    switch (op) {
      case TapeOpcode::BinAddU: return TapeOpcode::BinAdd;
      case TapeOpcode::BinSubU: return TapeOpcode::BinSub;
      case TapeOpcode::BinMulU: return TapeOpcode::BinMul;
      case TapeOpcode::BinAndU: return TapeOpcode::BinAnd;
      case TapeOpcode::BinOrU:  return TapeOpcode::BinOr;
      case TapeOpcode::BinXorU: return TapeOpcode::BinXor;
      case TapeOpcode::BinEqU:  return TapeOpcode::BinEq;
      case TapeOpcode::BinNeU:  return TapeOpcode::BinNe;
      case TapeOpcode::BinUltU: return TapeOpcode::BinUlt;
      case TapeOpcode::BinUleU: return TapeOpcode::BinUle;
      case TapeOpcode::BinUgtU: return TapeOpcode::BinUgt;
      case TapeOpcode::BinUgeU: return TapeOpcode::BinUge;
      case TapeOpcode::MuxAU:
      case TapeOpcode::MuxBU:
      case TapeOpcode::MuxU2:   return TapeOpcode::Mux;
      default: return op;
    }
}

/** In-process sharing: (cacheKey -> live program), so many
 * FleetSystems over the same program reuse one loaded .so. */
std::mutex &
registryMutex()
{
    static std::mutex mu;
    return mu;
}
std::unordered_map<uint64_t, std::weak_ptr<const JitProgram>> &
registry()
{
    static std::unordered_map<uint64_t, std::weak_ptr<const JitProgram>> r;
    return r;
}

} // namespace

void
JitProgram::dropInProcessCacheForTests()
{
    std::lock_guard<std::mutex> lk(registryMutex());
    registry().clear();
}

uint64_t
JitProgram::cacheKey(const TapeProgram &tape, int lanes)
{
    uint64_t h = tape.contentHash();
    fnvMix(h, kEmitterVersion);
    fnvMix(h, uint64_t(kJitAbi));
    fnvMix(h, uint64_t(lanes));
    fnvMix(h, tape.fits32 ? 32 : 64);
    return h;
}

std::string
JitProgram::emitSource(const TapeProgram &t, int lanes)
{
    const bool e32 = t.fits32;
    const int EB = e32 ? 32 : 64;
    const uint64_t emask = e32 ? 0xffffffffull : ~uint64_t(0);
    const uint64_t key = cacheKey(t, lanes);

    std::vector<char> is_const(size_t(t.numSlots), 0);
    std::vector<uint64_t> const_val(size_t(t.numSlots), 0);
    for (const auto &[s, v] : t.constSlots) {
        is_const[size_t(s)] = 1;
        const_val[size_t(s)] = v;
    }
    /** Chunk index whose loop body holds slot's local; -1 = state slot
     * or not yet defined. */
    std::vector<int> def_chunk(size_t(t.numSlots), -1);

    // ----- Store liveness. A chunk keeps every op result in a local;
    // the slot array only needs the values someone can read back after
    // eval returns:
    //  - slots the clock edge reads (register next/enable, BRAM ports),
    //  - output-port slots (the observable roots: RunReports, traces
    //    and the system's handshake plumbing read them via value()),
    //  - operands consumed by a different chunk than the defining one.
    // Everything else stays in registers. This is the jit's structural
    // advantage over the op-major interpreter, which must store every
    // op result — on store-bandwidth-bound hosts the eval sweep is
    // otherwise at parity with the interpreter's vectorized loops.
    // value() on a non-materialized interior node may return a stale
    // value, the same class of caveat TapeProgram::fits32 already
    // documents for wide interior nodes; ports, registers, BRAMs and
    // reports stay exact.
    std::vector<char> live_out(size_t(t.numSlots), 0);
    auto mark_live = [&](int32_t s) {
        if (s >= 0 && s < t.numSlots)
            live_out[size_t(s)] = 1;
    };
    for (const auto &r : t.regs) {
        mark_live(r.next);
        if (r.enable >= 0)
            mark_live(r.enable);
    }
    for (const auto &b : t.brams) {
        mark_live(b.rdAddr);
        mark_live(b.wrEn);
        mark_live(b.wrAddr);
        mark_live(b.wrData);
    }
    for (int32_t s : t.outputSlots)
        mark_live(s);
    {
        std::vector<int> sdef(size_t(t.numSlots), -1);
        for (size_t i = 0; i < t.ops.size(); ++i)
            sdef[size_t(t.ops[i].dst)] = int(i / size_t(kChunkOps));
        // Conservative per-op operand scan (unary ops carry junk in
        // b/c — the bounds + sdef checks make marking them harmless).
        auto cross_use = [&](int32_t s, int ch) {
            if (s >= 0 && size_t(s) < sdef.size() &&
                sdef[size_t(s)] >= 0 && sdef[size_t(s)] != ch)
                live_out[size_t(s)] = 1;
        };
        for (size_t i = 0; i < t.ops.size(); ++i) {
            const int ch = int(i / size_t(kChunkOps));
            cross_use(t.ops[i].a, ch);
            cross_use(t.ops[i].b, ch);
            cross_use(t.ops[i].c, ch);
        }
    }

    auto lit = [&](uint64_t v) {
        std::ostringstream os;
        os << "0x" << std::hex << (v & emask) << (e32 ? "u" : "ull");
        return os.str();
    };
    auto slot_ref = [&](int32_t slot) {
        return "s[" + std::to_string(int64_t(slot) * lanes) + " + l]";
    };
    auto operand = [&](int32_t slot, int chunk) -> std::string {
        if (is_const[size_t(slot)])
            return lit(const_val[size_t(slot)]);
        if (def_chunk[size_t(slot)] == chunk)
            return "t" + std::to_string(slot);
        return slot_ref(slot);
    };
    auto masked = [&](const std::string &expr, uint64_t imm) {
        if ((imm & emask) == emask)
            return "(" + expr + ")";
        return "((" + expr + ") & " + lit(imm) + ")";
    };
    /** Sign-extend an EB-bit operand holding a `sh`-bits-narrower
     * value: (selem_t)(elem_t)(x << sh) >> sh, as in evalTapeOps(). */
    auto sx = [&](const std::string &x, int sh) {
        if (sh <= 0)
            return "(selem_t)" + x;
        std::string n = std::to_string(sh);
        return "((selem_t)(elem_t)(" + x + " << " + n + ") >> " + n + ")";
    };

    // Vector geometry for the explicit-SIMD eval loops. GNU vector
    // extensions are used instead of relying on the host compiler's
    // loop auto-vectorizer: fused chains of 1-bit logic trip gcc's
    // bool/bit-precision narrowing ("relevant stmt not supported"),
    // and select-heavy bodies get if-converted into masked scatters —
    // both silently produce scalar code. Explicit vector types always
    // lower to SIMD (or to split ops on narrower ISAs). 64-byte
    // vectors when a slot row is at least that wide (gcc splits them
    // for hosts without AVX-512); narrower rows drop to 32 or 16
    // bytes, and a scalar tail loop covers the remaining lanes (and
    // single-lane eval calls).
    const int elem_bytes = EB / 8;
    const int64_t row_bytes = int64_t(lanes) * elem_bytes;
    const int VB = row_bytes >= 64 ? 64 : row_bytes >= 32 ? 32 : 16;
    const int VW = VB / elem_bytes;

    std::ostringstream out;
    out << "/* Generated by the fleet rtl jit emitter (rtl/jit.cc), "
           "version "
        << kEmitterVersion << ".\n"
        << " * Semantics mirror rtl::evalTapeOps / TapeSimulator::step\n"
        << " * bit for bit; lanes = " << lanes << ", elem = " << EB
        << " bits. Do not edit. */\n"
        << "#include <stdint.h>\n"
        << "typedef uint" << EB << "_t elem_t;\n"
        << "typedef int" << EB << "_t selem_t;\n"
        << "typedef elem_t vec __attribute__((vector_size(" << VB
        << ")));\n"
        << "typedef selem_t svec __attribute__((vector_size(" << VB
        << ")));\n"
        << "typedef elem_t vecu __attribute__((vector_size(" << VB
        << "), aligned(" << elem_bytes << "), may_alias));\n"
        // Compiled as C++ (for GNU vector ternaries): the exported
        // symbols need C linkage, and the variables must not be const
        // (C++ const at namespace scope means internal linkage).
        << "extern \"C\" unsigned long long fleet_jit_key = " << key
        << "ull;\n"
        << "extern \"C\" int fleet_jit_abi = " << kJitAbi << ";\n\n";

    // ----- Combinational evaluation, chunked into fused lane loops.
    // Each chunk body is emitted twice: a vector loop advancing VW
    // lanes per iteration and a scalar remainder loop with identical
    // semantics (also the single-lane path). Everything is branchless
    // in both: selects go through all-ones/all-zeros masks, variable
    // shifts wrap the count and mask the result, UnNot is the
    // xor-with-mask form — ternaries/branches around stores would
    // reintroduce the scalarizing patterns described above, and on
    // narrow values `~x & 1` becomes _Bool arithmetic.
    const size_t num_ops = t.ops.size();
    const int num_chunks =
        int((num_ops + size_t(kChunkOps) - 1) / size_t(kChunkOps));
    auto emit_ops = [&](int ch, size_t lo, size_t hi, bool V) {
        const char *ET = V ? "vec" : "elem_t";
        auto slot_mem = [&](int32_t slot, bool store) -> std::string {
            const std::string off = std::to_string(int64_t(slot) * lanes);
            if (V)
                return std::string("*(") + (store ? "" : "const ") +
                       "vecu *)(s + " + off + " + l)";
            return "s[" + off + " + l]";
        };
        auto opr = [&](int32_t slot) -> std::string {
            if (is_const[size_t(slot)])
                return lit(const_val[size_t(slot)]);
            if (def_chunk[size_t(slot)] == ch)
                return "t" + std::to_string(slot);
            return "(" + slot_mem(slot, false) + ")";
        };
        /** Force a (possibly scalar) expression to vector type; scalar
         * literals broadcast. No-op in scalar mode. */
        auto vb = [&](const std::string &x) {
            if (!V)
                return "(" + x + ")";
            return "((vec){0} + " + x + ")";
        };
        /** Comparison expression -> the 0/1 value evalTapeOps stores.
         * In vector mode a GNU vector ternary: one compare-into-mask
         * plus one masked move, cheaper than materializing the 0/-1
         * mask and anding with 1. */
        auto cmp01 = [&](const std::string &c) {
            if (V)
                return "(" + c + " ? ((vec){0} + 1) : (vec){0})";
            return "(elem_t)" + c;
        };
        /** Comparison expression -> all-ones/all-zeros guard mask. */
        auto cmpMask = [&](const std::string &c) {
            if (V)
                return "(vec)" + c;
            return "((elem_t)0 - (elem_t)" + c + ")";
        };
        /** Sign-extend an EB-bit operand holding a `sh`-bits-narrower
         * value, as in evalTapeOps(). */
        auto sxm = [&](const std::string &x, int sh) {
            const char *ST = V ? "svec" : "selem_t";
            if (sh <= 0)
                return "(" + std::string(ST) + ")" + vb(x);
            std::string n = std::to_string(sh);
            return "((" + std::string(ST) + ")(" + vb(x) + " << " + n +
                   ") >> " + n + ")";
        };
        for (size_t i = lo; i < hi; ++i) {
            const TapeOp &op = t.ops[i];
            const std::string A = opr(op.a);
            const std::string B = opr(op.b);
            std::string rhs;
            switch (baseOpcode(op.op)) {
              case TapeOpcode::BinAdd:
                rhs = masked(A + " + " + B, op.imm);
                break;
              case TapeOpcode::BinSub:
                rhs = masked(vb(A) + " - " + B, op.imm);
                break;
              case TapeOpcode::BinMul:
                rhs = masked(A + " * " + B, op.imm);
                break;
              case TapeOpcode::BinAnd:
                rhs = "(" + A + " & " + B + ")";
                break;
              case TapeOpcode::BinOr:
                rhs = "(" + A + " | " + B + ")";
                break;
              case TapeOpcode::BinXor:
                rhs = "(" + A + " ^ " + B + ")";
                break;
              case TapeOpcode::BinShlC:
                rhs = op.sa >= EB
                          ? lit(0)
                          : masked(vb(A) + " << " + std::to_string(op.sa),
                                   op.imm);
                break;
              case TapeOpcode::BinShrC:
                rhs = op.sa >= EB
                          ? lit(0)
                          : "(" + vb(A) + " >> " + std::to_string(op.sa) +
                                ")";
                break;
              case TapeOpcode::BinShl: {
                // As in the interpreter: op.sa (the node width) may
                // exceed EB under demanded-width narrowing; any shift
                // >= min(width, EB) produces 0 in the low EB bits. The
                // wrapped count keeps the shift defined; the guard
                // mask zeroes out-of-range results.
                const int w = std::min<int>(op.sa, EB);
                rhs = "(" +
                      masked(vb(A) + " << (" + vb(B) + " & " +
                                 std::to_string(EB - 1) + ")",
                             op.imm) +
                      " & " + cmpMask("(" + vb(B) + " < " +
                                      lit(uint64_t(w)) + ")") +
                      ")";
                break;
              }
              case TapeOpcode::BinShr:
                rhs = "((" + vb(A) + " >> (" + vb(B) + " & " +
                      std::to_string(EB - 1) + ")) & " +
                      cmpMask("(" + vb(B) + " < " + lit(uint64_t(EB)) +
                              ")") +
                      ")";
                break;
              case TapeOpcode::BinEq:
                rhs = cmp01("(" + vb(A) + " == " + B + ")");
                break;
              case TapeOpcode::BinNe:
                rhs = cmp01("(" + vb(A) + " != " + B + ")");
                break;
              case TapeOpcode::BinUlt:
                rhs = cmp01("(" + vb(A) + " < " + B + ")");
                break;
              case TapeOpcode::BinUle:
                rhs = cmp01("(" + vb(A) + " <= " + B + ")");
                break;
              case TapeOpcode::BinUgt:
                rhs = cmp01("(" + vb(A) + " > " + B + ")");
                break;
              case TapeOpcode::BinUge:
                rhs = cmp01("(" + vb(A) + " >= " + B + ")");
                break;
              case TapeOpcode::BinSlt:
              case TapeOpcode::BinSle:
              case TapeOpcode::BinSgt:
              case TapeOpcode::BinSge: {
                const int sa = op.sa - (64 - EB);
                const int sb = op.sb - (64 - EB);
                if (sa < 0 || sb < 0)
                    panic("rtl: jit: signed-compare operand wider than "
                          "the lane element");
                const TapeOpcode b = baseOpcode(op.op);
                const char *cmp = b == TapeOpcode::BinSlt   ? "<"
                                  : b == TapeOpcode::BinSle ? "<="
                                  : b == TapeOpcode::BinSgt ? ">"
                                                            : ">=";
                rhs = cmp01("(" + sxm(A, sa) + " " + cmp + " " +
                            sxm(B, sb) + ")");
                break;
              }
              case TapeOpcode::BinLAnd:
                rhs = "(" +
                      cmp01("(" + vb(A) + " != (elem_t)0)") + " & " +
                      cmp01("(" + vb(B) + " != (elem_t)0)") + ")";
                break;
              case TapeOpcode::BinLOr:
                rhs = "(" +
                      cmp01("(" + vb(A) + " != (elem_t)0)") + " | " +
                      cmp01("(" + vb(B) + " != (elem_t)0)") + ")";
                break;
              case TapeOpcode::UnNot:
                // (a ^ m) & m == (~a) & m for every a, without the ~.
                rhs = masked(vb(A) + " ^ " + lit(op.imm), op.imm);
                break;
              case TapeOpcode::UnLNot:
                rhs = cmp01("(" + vb(A) + " == (elem_t)0)");
                break;
              case TapeOpcode::UnNeg:
                rhs = V ? masked("(vec){0} - " + vb(A), op.imm)
                        : masked("(elem_t)0 - " + A, op.imm);
                break;
              case TapeOpcode::Mux: {
                if (V) {
                    // Vector ternary: compare-into-mask + one blend.
                    rhs = "((" + vb(opr(op.c)) + " != (elem_t)0) ? " +
                          vb(A) + " : " + vb(B) + ")";
                    break;
                }
                const std::string mn = "m" + std::to_string(op.dst);
                out << "        const " << ET << " " << mn
                    << " = ((elem_t)0 - (" << opr(op.c) << " != 0));\n";
                rhs = "((" + A + " & " + mn + ") | (" + B + " & ~" + mn +
                      "))";
                break;
              }
              case TapeOpcode::Slice:
                rhs = op.sa >= EB
                          ? lit(0)
                          : masked(vb(A) + " >> " + std::to_string(op.sa),
                                   op.imm);
                break;
              case TapeOpcode::Concat:
                rhs = op.sa >= EB
                          ? B
                          : "((" + vb(A) + " << " + std::to_string(op.sa) +
                                ") | " + B + ")";
                break;
              default:
                panic("rtl: jit: unhandled opcode in emitter");
            }
            // Keep the value in a local for in-chunk consumers; store
            // it back to the slot row only when some later reader can
            // see it (live_out above). Dead stores are the dominant
            // cost on store-bound hosts.
            out << "        const " << ET << " t" << op.dst << " = "
                << (V ? vb(rhs) : rhs) << ";\n";
            if (live_out[size_t(op.dst)])
                out << "        " << slot_mem(op.dst, true) << " = t"
                    << op.dst << ";\n";
            def_chunk[size_t(op.dst)] = ch;
        }
    };
    for (int ch = 0; ch < num_chunks; ++ch) {
        const size_t lo = size_t(ch) * kChunkOps;
        const size_t hi = std::min(num_ops, lo + kChunkOps);
        out << "static void chunk" << ch
            << "(elem_t *__restrict__ s, int lane_lo, int lane_hi)\n{\n"
            << "    int l = lane_lo;\n"
            << "    for (; l + " << VW << " <= lane_hi; l += " << VW
            << ") {\n";
        emit_ops(ch, lo, hi, true);
        out << "    }\n"
            << "    for (; l < lane_hi; ++l) {\n";
        emit_ops(ch, lo, hi, false);
        out << "    }\n}\n\n";
    }

    out << "extern \"C\" void fleet_jit_eval(void *vs, int lane_lo, int lane_hi)\n{\n";
    if (num_chunks > 0) {
        out << "    elem_t *__restrict__ s = (elem_t *)vs;\n";
        for (int ch = 0; ch < num_chunks; ++ch)
            out << "    chunk" << ch << "(s, lane_lo, lane_hi);\n";
    } else {
        out << "    (void)vs;\n    (void)lane_lo;\n    (void)lane_hi;\n";
    }
    out << "}\n\n";

    // ----- Clock edge: the exact TapeSimulator::step() commit order —
    // BRAM read-first latches and writes, register commits (reading
    // pre-edge slot values), then publish latches and register outputs.
    //
    // The BRAM section is inherently per-lane (each lane addresses a
    // different word: a gather/scatter), so it stays a scalar loop with
    // the latches in locals. The register commit and publish sections
    // are dense row operations and are emitted as explicit vector
    // loops like the eval chunks: with a few hundred registers the
    // scalar form is the slowest part of the whole jit cycle.
    //
    // Splitting the sections is only legal if publishing a BRAM's
    // rdData slot at the end of its lane iteration cannot be observed
    // by the (later) register loops: a register whose next/enable IS a
    // BRAM output node must read the pre-edge value. That coincidence
    // is detected at emit time and drops this step back to the fully
    // fused scalar loop, which handles it by ordering within the lane
    // body.
    out << "extern \"C\" void fleet_jit_step(void *vs, void *vr, void *const *vm,\n"
           "                    int lane_lo, int lane_hi)\n{\n";
    const bool step_active = !t.regs.empty() || !t.brams.empty();
    if (!step_active) {
        out << "    (void)vs;\n    (void)vr;\n    (void)vm;\n"
               "    (void)lane_lo;\n    (void)lane_hi;\n}\n";
        return out.str();
    }
    out << "    elem_t *__restrict__ s = (elem_t *)vs;\n";
    if (!t.regs.empty())
        out << "    elem_t *__restrict__ r = (elem_t *)vr;\n";
    else
        out << "    (void)vr;\n";
    if (!t.brams.empty()) {
        for (size_t i = 0; i < t.brams.size(); ++i)
            out << "    elem_t *const m" << i << " = (elem_t *)vm[" << i
                << "];\n";
    } else {
        out << "    (void)vm;\n";
    }

    bool publish_early_ok = true;
    for (const auto &b : t.brams)
        for (const auto &rg : t.regs)
            if (rg.next == b.rdData ||
                (rg.enable >= 0 && rg.enable == b.rdData))
                publish_early_ok = false;

    auto emit_bram_body = [&](size_t i) {
        const auto &b = t.brams[i];
        const std::string elems = std::to_string(b.elements) + "u";
        out << "        const elem_t ra" << i << " = " << slot_ref(b.rdAddr)
            << ";\n"
            << "        const elem_t lt" << i << " = ra" << i << " < "
            << elems << " ? m" << i << "[(uint64_t)ra" << i << " * "
            << lanes << " + l] : 0;\n"
            << "        if (" << slot_ref(b.wrEn) << " != 0) {\n"
            << "            const elem_t wa" << i << " = "
            << slot_ref(b.wrAddr) << ";\n"
            << "            if (wa" << i << " < " << elems << ")\n"
            << "                m" << i << "[(uint64_t)wa" << i << " * "
            << lanes << " + l] = " << slot_ref(b.wrData) << ";\n"
            << "        }\n";
    };

    if (!publish_early_ok) {
        // Fused scalar fallback: a register reads a BRAM output
        // directly, so every phase must interleave per lane.
        out << "    for (int l = lane_lo; l < lane_hi; ++l) {\n";
        for (size_t i = 0; i < t.brams.size(); ++i)
            emit_bram_body(i);
        for (size_t i = 0; i < t.regs.size(); ++i) {
            const auto &rg = t.regs[i];
            const std::string rv =
                "r[" + std::to_string(int64_t(i) * lanes) + " + l]";
            if (rg.enable < 0)
                out << "        " << rv << " = " << slot_ref(rg.next)
                    << ";\n";
            else
                out << "        if (" << slot_ref(rg.enable) << " != 0) "
                    << rv << " = " << slot_ref(rg.next) << ";\n";
        }
        for (size_t i = 0; i < t.brams.size(); ++i)
            out << "        " << slot_ref(t.brams[i].rdData) << " = lt"
                << i << ";\n";
        for (size_t i = 0; i < t.regs.size(); ++i)
            out << "        " << slot_ref(t.regs[i].out) << " = r["
                << int64_t(i) * lanes << " + l];\n";
        out << "    }\n}\n";
        return out.str();
    }

    if (!t.brams.empty()) {
        // Latch + conditional write + publish, per lane. rdData is
        // published at the end of the lane body, after every BRAM port
        // slot of that lane has been read (ports of later BRAMs may be
        // another BRAM's output).
        out << "    for (int l = lane_lo; l < lane_hi; ++l) {\n";
        for (size_t i = 0; i < t.brams.size(); ++i)
            emit_bram_body(i);
        for (size_t i = 0; i < t.brams.size(); ++i)
            out << "        " << slot_ref(t.brams[i].rdData) << " = lt"
                << i << ";\n";
        out << "    }\n";
    }
    if (!t.regs.empty()) {
        auto row = [&](const char *base, int64_t idx, bool V,
                       bool store) -> std::string {
            const std::string off = std::to_string(idx * lanes);
            if (V)
                return std::string("*(") + (store ? "" : "const ") +
                       "vecu *)(" + base + " + " + off + " + l)";
            return std::string(base) + "[" + off + " + l]";
        };
        // When no register reads another register's out slot, commit
        // straight into the out slots in one pass: every next/enable
        // row read here is pre-edge by construction, and the r[]
        // staging array is skipped entirely (regValue() reads the out
        // slot, which this keeps current). That halves the reg-phase
        // store traffic vs the interpreter's commit+publish sweeps.
        std::vector<char> is_reg_out(size_t(t.numSlots), 0);
        for (const auto &rg : t.regs)
            is_reg_out[size_t(rg.out)] = 1;
        bool chained = false;
        for (const auto &rg : t.regs)
            if (is_reg_out[size_t(rg.next)] ||
                (rg.enable >= 0 && is_reg_out[size_t(rg.enable)]))
                chained = true;
        auto emit_fused = [&](bool V) {
            for (size_t i = 0; i < t.regs.size(); ++i) {
                const auto &rg = t.regs[i];
                const std::string next = row("s", rg.next, V, false);
                const std::string ov = row("s", rg.out, V, true);
                if (rg.enable < 0)
                    out << "        " << ov << " = " << next << ";\n";
                else if (V)
                    out << "        " << ov << " = ((("
                        << row("s", rg.enable, true, false)
                        << ") != (elem_t)0) ? (" << next << ") : ("
                        << ov << "));\n";
                else
                    out << "        if ("
                        << row("s", rg.enable, false, false)
                        << " != 0) " << ov << " = " << next << ";\n";
            }
        };
        // Chained fallback: commit into r[] (disjoint from slots), so
        // each register reads pre-edge values regardless of order,
        // then publish r[] to the out slots.
        auto emit_commits = [&](bool V) {
            for (size_t i = 0; i < t.regs.size(); ++i) {
                const auto &rg = t.regs[i];
                const std::string next = row("s", rg.next, V, false);
                const std::string rv = row("r", int64_t(i), V, true);
                if (rg.enable < 0)
                    out << "        " << rv << " = " << next << ";\n";
                else if (V)
                    out << "        " << rv << " = ((("
                        << row("s", rg.enable, true, false)
                        << ") != (elem_t)0) ? (" << next << ") : ("
                        << rv << "));\n";
                else
                    out << "        if ("
                        << row("s", rg.enable, false, false)
                        << " != 0) " << rv << " = " << next << ";\n";
            }
        };
        auto emit_publishes = [&](bool V) {
            for (size_t i = 0; i < t.regs.size(); ++i)
                out << "        "
                    << row("s", t.regs[i].out, V, true) << " = "
                    << row("r", int64_t(i), V, false) << ";\n";
        };
        out << "    int l = lane_lo;\n"
            << "    for (; l + " << VW << " <= lane_hi; l += " << VW
            << ") {\n";
        chained ? emit_commits(true) : emit_fused(true);
        out << "    }\n    for (; l < lane_hi; ++l) {\n";
        chained ? emit_commits(false) : emit_fused(false);
        out << "    }\n";
        if (chained) {
            out << "    l = lane_lo;\n"
                << "    for (; l + " << VW << " <= lane_hi; l += " << VW
                << ") {\n";
            emit_publishes(true);
            out << "    }\n    for (; l < lane_hi; ++l) {\n";
            emit_publishes(false);
            out << "    }\n";
        }
    }
    out << "}\n";
    return out.str();
}

Status
JitProgram::availability(const JitOptions &opts)
{
#ifndef FLEET_JIT_SUPPORTED
    (void)opts;
    return Status::make(StatusCode::InvalidArgument,
                        "jit unsupported on this platform (no dlopen)");
#else
    if (jitDisabled())
        return Status::make(StatusCode::InvalidArgument,
                            "jit disabled via FLEET_JIT_DISABLE");
    Status why;
    if (discoverCompiler(opts, &why).empty())
        return why;
    return {};
#endif
}

JitProgram::~JitProgram()
{
#ifdef FLEET_JIT_SUPPORTED
    if (handle_)
        dlclose(handle_);
#endif
}

std::shared_ptr<const JitProgram>
JitProgram::compile(const TapeProgram &tape, const JitOptions &opts,
                    Status *status)
{
    Status local;
    if (!status)
        status = &local;
    *status = {};
#ifndef FLEET_JIT_SUPPORTED
    (void)tape;
    *status = availability(opts);
    return nullptr;
#else
    if (opts.lanes < 1) {
        *status = Status::make(StatusCode::InvalidArgument,
                               "jit lane count must be >= 1");
        return nullptr;
    }
    if (int64_t(tape.numSlots) * opts.lanes > int64_t(INT_MAX)) {
        *status = Status::make(StatusCode::InvalidArgument,
                               "jit slot array exceeds int indexing");
        return nullptr;
    }
    const uint64_t key = cacheKey(tape, opts.lanes);
    if (!opts.forceRecompile) {
        std::lock_guard<std::mutex> lk(registryMutex());
        auto it = registry().find(key);
        if (it != registry().end())
            if (auto sp = it->second.lock())
                return sp;
    }
    Status avail = availability(opts);
    if (!avail.ok()) {
        *status = avail;
        return nullptr;
    }

    const auto t0 = std::chrono::steady_clock::now();
    // Compiles are rare (once per program x lane count) — serialize
    // them so concurrent system constructions never race on one
    // artifact path.
    static std::mutex compile_mu;
    std::lock_guard<std::mutex> clk(compile_mu);
    if (!opts.forceRecompile) {
        std::lock_guard<std::mutex> lk(registryMutex());
        auto it = registry().find(key);
        if (it != registry().end())
            if (auto sp = it->second.lock())
                return sp;
    }

    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path dir =
        opts.cacheDir.empty() ? fs::path(defaultCacheDir())
                              : fs::path(opts.cacheDir);
    fs::create_directories(dir, ec);
    if (ec) {
        *status = Status::make(StatusCode::IoError,
                               "jit cache dir " + dir.string() + ": " +
                                   ec.message());
        return nullptr;
    }
    char keyhex[24];
    std::snprintf(keyhex, sizeof keyhex, "%016llx",
                  (unsigned long long)key);
    const std::string stem = std::string("fleet-jit-") + keyhex;
    const fs::path so = dir / (stem + ".so");

    std::shared_ptr<JitProgram> prog(new JitProgram);
    prog->lanes_ = opts.lanes;
    prog->elem32_ = tape.fits32;
    prog->key_ = key;

    auto loadInto = [&](const std::string &path) -> Status {
        void *h = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
        if (!h) {
            const char *err = dlerror();
            return Status::make(StatusCode::InternalError,
                                std::string("dlopen: ") +
                                    (err ? err : "unknown error"));
        }
        auto *k = reinterpret_cast<const unsigned long long *>(
            dlsym(h, "fleet_jit_key"));
        auto *abi =
            reinterpret_cast<const int *>(dlsym(h, "fleet_jit_abi"));
        auto ev = reinterpret_cast<EvalFn>(dlsym(h, "fleet_jit_eval"));
        auto st = reinterpret_cast<StepFn>(dlsym(h, "fleet_jit_step"));
        if (!k || !abi || !ev || !st || *k != key || *abi != kJitAbi) {
            dlclose(h);
            return Status::make(StatusCode::InternalError,
                                "artifact key/abi mismatch (stale or "
                                "corrupted cache entry)");
        }
        prog->handle_ = h;
        prog->eval_ = ev;
        prog->step_ = st;
        return {};
    };

    bool loaded = false;
    if (!opts.forceRecompile && fs::exists(so, ec)) {
        Status s = loadInto(so.string());
        if (s.ok()) {
            loaded = true;
            prog->fromDiskCache_ = true;
        } else {
            inform("rtl-jit: discarding unusable cache entry ",
                   so.string(), ": ", s.toString());
            fs::remove(so, ec);
        }
    }
    if (!loaded) {
        std::string src;
        try {
            src = emitSource(tape, opts.lanes);
        } catch (const std::exception &e) {
            *status =
                Status::make(StatusCode::InternalError,
                             std::string("jit emit: ") + e.what());
            return nullptr;
        }
        const fs::path csrc = dir / (stem + ".c");
        {
            std::ofstream f(csrc, std::ios::trunc);
            f << src;
            if (!f) {
                *status = Status::make(StatusCode::IoError,
                                       "jit: cannot write " +
                                           csrc.string());
                return nullptr;
            }
        }
        Status why;
        const std::string cc = discoverCompiler(opts, &why);
        if (cc.empty()) {
            *status = why;
            return nullptr;
        }
        const fs::path tmp =
            dir / (stem + ".tmp" + std::to_string(uint64_t(getpid())) +
                   ".so");
        const fs::path log = dir / (stem + ".log");
        auto tryCompile = [&](bool native) {
            // C++ mode for GNU vector ternaries (see discoverCompiler);
            // -fno-exceptions/-fno-rtti so the kernel needs no C++
            // runtime and links cleanly under a plain C driver too.
            std::string cmd =
                shellQuote(cc) +
                " -O3 -std=c++17 -fno-exceptions -fno-rtti"
                " -fPIC -shared" +
                (native ? " -march=native" : "") + " -x c++ " +
                shellQuote(csrc.string()) + " -o " +
                shellQuote(tmp.string()) + " > " +
                shellQuote(log.string()) + " 2>&1";
            return std::system(cmd.c_str()) == 0;
        };
        // -march=native lets the vectorizer use the host's widest ISA;
        // retried without it for toolchains that reject the flag.
        if (!tryCompile(true) && !tryCompile(false)) {
            fs::remove(tmp, ec);
            *status = Status::make(StatusCode::InternalError,
                                   "jit: " + cc + " failed; see " +
                                       log.string());
            return nullptr;
        }
        fs::rename(tmp, so, ec);
        if (ec) {
            fs::remove(tmp, ec);
            *status = Status::make(StatusCode::IoError,
                                   "jit: rename to " + so.string() +
                                       ": " + ec.message());
            return nullptr;
        }
        Status s = loadInto(so.string());
        if (!s.ok()) {
            *status = s;
            return nullptr;
        }
    }
    prog->artifactPath_ = so.string();
    prog->compileMillis_ =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    {
        std::lock_guard<std::mutex> lk(registryMutex());
        registry()[key] = prog;
    }
    return prog;
#endif
}

} // namespace rtl
} // namespace fleet
