#ifndef FLEET_RTL_SIM_H
#define FLEET_RTL_SIM_H

/**
 * @file
 * Cycle-accurate interpreter for rtl::Circuit. Each simulated clock cycle
 * is: drive input ports, evalComb() (single forward pass over the
 * topologically ordered node list), observe outputs, then step() to commit
 * registers and BRAM ports at the clock edge.
 *
 * BRAM timing matches FPGA block RAM in read-first mode: the read data
 * latched at an edge reflects the memory contents *before* any write
 * committed at the same edge, and becomes visible on the rd_data node
 * during the following cycle (one cycle of read latency). Out-of-range
 * addresses read as zero and writes to them are dropped — don't-care
 * behaviour the compiler never exercises for checked programs.
 */

#include <cstdint>
#include <vector>

#include "rtl/circuit.h"

namespace fleet {
namespace rtl {

class Simulator
{
  public:
    explicit Simulator(const Circuit &circuit);

    /** Reset registers to their init values and clear BRAM contents. */
    void reset();

    /** Drive an input port for the current cycle. */
    void setInput(int port_index, uint64_t value);

    /** Evaluate all combinational nodes for the current cycle. */
    void evalComb();

    /** Value of a node as of the last evalComb(). */
    uint64_t value(NodeId id) const { return values_[id]; }

    /** Clock edge: commit registers and BRAM reads/writes. */
    void step();

    /// @name State introspection (tests, debugging).
    /// @{
    uint64_t regValue(int reg_index) const { return regValues_[reg_index]; }
    uint64_t bramWord(int bram_index, int addr) const;
    /// @}

    uint64_t cycles() const { return cycles_; }
    const Circuit &circuit() const { return circuit_; }

  private:
    const Circuit &circuit_;
    std::vector<uint64_t> values_;     ///< Per-node comb values.
    std::vector<uint64_t> inputs_;     ///< Per-port driven values.
    std::vector<uint64_t> regValues_;
    std::vector<std::vector<uint64_t>> bramMems_;
    std::vector<uint64_t> bramRdLatch_;
    uint64_t cycles_ = 0;
};

} // namespace rtl
} // namespace fleet

#endif // FLEET_RTL_SIM_H
