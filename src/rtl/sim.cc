#include "rtl/sim.h"

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace rtl {

Simulator::Simulator(const Circuit &circuit) : circuit_(circuit)
{
    circuit_.validate();
    values_.resize(circuit_.nodes().size(), 0);
    inputs_.resize(circuit_.inputs().size(), 0);
    reset();
}

void
Simulator::reset()
{
    regValues_.clear();
    for (const auto &reg : circuit_.regs())
        regValues_.push_back(reg.init);
    bramMems_.clear();
    for (const auto &bram : circuit_.brams())
        bramMems_.emplace_back(bram.elements, 0);
    bramRdLatch_.assign(circuit_.brams().size(), 0);
    cycles_ = 0;
}

void
Simulator::setInput(int port_index, uint64_t value)
{
    const auto &port = circuit_.inputs().at(port_index);
    inputs_[port_index] = truncTo(value, port.width);
}

void
Simulator::evalComb()
{
    const auto &nodes = circuit_.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        uint64_t v = 0;
        switch (n.kind) {
          case NodeKind::Const:
            v = n.value;
            break;
          case NodeKind::Input:
            v = inputs_[n.index];
            break;
          case NodeKind::RegOut:
            v = regValues_[n.index];
            break;
          case NodeKind::BramRdData:
            v = bramRdLatch_[n.index];
            break;
          case NodeKind::Bin:
            v = evalBinOp(n.binOp, values_[n.a], nodes[n.a].width,
                          values_[n.b], nodes[n.b].width);
            break;
          case NodeKind::Un:
            v = evalUnOp(n.unOp, values_[n.a], nodes[n.a].width);
            break;
          case NodeKind::Mux:
            v = values_[n.c] != 0 ? values_[n.a] : values_[n.b];
            break;
          case NodeKind::Slice:
            v = bitsOf(values_[n.a], n.index, n.width);
            break;
          case NodeKind::Concat:
            v = shl64(values_[n.a], nodes[n.b].width) | values_[n.b];
            break;
        }
        values_[i] = v;
    }
}

void
Simulator::step()
{
    // BRAM reads latch before writes land (read-first semantics).
    const auto &brams = circuit_.brams();
    for (size_t i = 0; i < brams.size(); ++i) {
        const BramInfo &bram = brams[i];
        uint64_t rd_addr = values_[bram.rdAddr];
        bramRdLatch_[i] = rd_addr < bramMems_[i].size()
                              ? bramMems_[i][rd_addr]
                              : 0;
        if (values_[bram.wrEn] != 0) {
            uint64_t wr_addr = values_[bram.wrAddr];
            if (wr_addr < bramMems_[i].size())
                bramMems_[i][wr_addr] = values_[bram.wrData];
        }
    }

    const auto &regs = circuit_.regs();
    for (size_t i = 0; i < regs.size(); ++i) {
        const RegInfo &reg = regs[i];
        if (reg.enable == kNoNode || values_[reg.enable] != 0)
            regValues_[i] = values_[reg.next];
    }

    ++cycles_;
}

uint64_t
Simulator::bramWord(int bram_index, int addr) const
{
    const auto &mem = bramMems_.at(bram_index);
    if (addr < 0 || addr >= static_cast<int>(mem.size()))
        panic("rtl: bramWord address out of range");
    return mem[addr];
}

} // namespace rtl
} // namespace fleet
