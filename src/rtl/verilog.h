#ifndef FLEET_RTL_VERILOG_H
#define FLEET_RTL_VERILOG_H

/**
 * @file
 * Verilog-2001 emitter for rtl::Circuit, the analogue of the paper's
 * generated RTL (Figure 4). The emitted module has `clock` and `reset`
 * ports followed by the circuit's IO; BRAMs use the standard inferred
 * block-RAM pattern (registered read address, read-first) that FPGA
 * vendor tools map onto technology BRAMs, as described in Section 4.
 */

#include <string>

#include "rtl/circuit.h"

namespace fleet {
namespace rtl {

/** Render a circuit as a synthesizable Verilog module. */
std::string emitVerilog(const Circuit &circuit);

} // namespace rtl
} // namespace fleet

#endif // FLEET_RTL_VERILOG_H
