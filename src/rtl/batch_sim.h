#ifndef FLEET_RTL_BATCH_SIM_H
#define FLEET_RTL_BATCH_SIM_H

/**
 * @file
 * Batched evaluation of one TapeProgram across many independent circuit
 * replicas ("lanes") in structure-of-arrays layout: slot s of lane l
 * lives at values[s * lanes + l], so the inner per-lane loop of every
 * tape op is a contiguous, branch-light sweep the compiler
 * auto-vectorizes. This is what makes the cycle-accurate RTL backend
 * viable at full PU counts: all PUs of a memory channel advance through
 * the same op tape together instead of each replica re-dispatching the
 * whole netlist.
 *
 * Lanes are fully independent (separate registers, BRAMs, inputs); the
 * batch is bit-identical to running `lanes` scalar TapeSimulators side
 * by side. evalLane()/stepLane() run a single lane standalone, so one
 * lane can also serve as an ordinary ProcessingUnit in single-PU
 * testbenches.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "rtl/tape.h"

namespace fleet {
namespace rtl {

class JitProgram;

/**
 * 64-byte (cache-line) aligned allocator for the SoA state arrays. The
 * native jit kernel (rtl/jit.h) issues full-cache-line vector loads and
 * stores on slot rows; with the default 16-byte operator-new alignment
 * every one of those accesses straddles two lines, which costs ~1.5x on
 * eval throughput. Alignment also helps the interpreter's
 * auto-vectorized sweeps (no peeling prologues).
 */
template <typename T>
struct CacheAlignedAlloc
{
    using value_type = T;
    static constexpr std::align_val_t kAlign{64};
    CacheAlignedAlloc() = default;
    template <typename U>
    CacheAlignedAlloc(const CacheAlignedAlloc<U> &) noexcept
    {
    }
    T *allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(n * sizeof(T), kAlign));
    }
    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, kAlign);
    }
    template <typename U>
    bool operator==(const CacheAlignedAlloc<U> &) const noexcept
    {
        return true;
    }
};

template <typename T>
using AlignedVec = std::vector<T, CacheAlignedAlloc<T>>;

class BatchSimulator
{
  public:
    BatchSimulator(std::shared_ptr<const TapeProgram> tape, int lanes);

    int lanes() const { return lanes_; }
    const TapeProgram &tape() const { return *tape_; }

    /**
     * Lane element width in bits: 32 when no observable value depends
     * on bits above 32 anywhere in the circuit (TapeProgram::fits32) —
     * half the SoA traffic, twice the SIMD lanes per vector — else 64.
     * Ports, registers and BRAMs are bit-identical either way; value()
     * on an interior node wider than 32 bits may be truncated to its
     * low 32 bits in 32-bit mode.
     */
    int elementBits() const { return elem32_ ? 32 : 64; }

    void reset();
    void resetLane(int lane);
    void setInput(int lane, int port_index, uint64_t value)
    {
        int32_t s = tape_->inputSlot[port_index];
        if (s < 0)
            return;
        uint64_t v = truncTo(value, tape_->inputWidth[port_index]);
        if (elem32_)
            slots32_[size_t(s) * lanes_ + lane] = uint32_t(v);
        else
            slots64_[size_t(s) * lanes_ + lane] = v;
    }

    /**
     * Attach a natively compiled kernel (rtl/jit.h): evalAll/evalLane
     * and step/stepLane dispatch to the generated code instead of the
     * interpreter sweeps. The kernel must have been compiled for this
     * exact tape, lane count and element width (checked via
     * JitProgram::cacheKey; panics on mismatch — attaching is a
     * construction-time decision, not a data-dependent one). All state
     * stays in this simulator's arrays, so reset/setInput/value and
     * the bit-identity contract are unchanged.
     */
    void attachJit(std::shared_ptr<const JitProgram> jit);
    bool jitAttached() const { return jit_ != nullptr; }

    /** Evaluate every lane's combinational logic (SoA, vectorized). */
    void evalAll();
    /** Evaluate one lane only (scalar; standalone-lane use). */
    void evalLane(int lane);

    /**
     * Value of a source-circuit node as of the last eval. With a jit
     * kernel attached, exact for output-port nodes, register outputs
     * and BRAM read data; an interior node the generated code keeps in
     * a machine register may read stale (the fits32-style
     * observability weakening, see rtl/jit.h).
     */
    uint64_t value(int lane, NodeId source_node) const
    {
        return valueAtSlot(lane, tape_->slotOf(source_node));
    }

    /**
     * Same, addressed by tape slot (tape().slotOf(node)). Lets a
     * tight observer loop hoist the node-to-slot lookup, which
     * otherwise dominates when reading a few ports across many lanes
     * every cycle.
     */
    uint64_t valueAtSlot(int lane, int32_t slot) const
    {
        size_t idx = size_t(slot) * lanes_ + lane;
        return elem32_ ? slots32_[idx] : slots64_[idx];
    }

    /** Clock edge for every lane. */
    void step();
    /** Clock edge for one lane only. */
    void stepLane(int lane);

    uint64_t regValue(int lane, int reg_index) const;
    uint64_t bramWord(int lane, int bram_index, int addr) const;

  private:
    void stepRange(int lane_lo, int lane_hi);

    std::shared_ptr<const TapeProgram> tape_;
    int lanes_;
    bool elem32_; ///< Storage element type; see elementBits().
    std::shared_ptr<const JitProgram> jit_; ///< Optional native kernel.
    std::vector<void *> bramPtrs_; ///< Per-BRAM SoA base, for jit_->step.

    /**
     * Exactly one of the two storage sets is sized, per elem32_.
     * Layout in both: slots [slot * lanes + lane], regs
     * [reg * lanes + lane], each BRAM [addr * lanes + lane] (SoA so
     * step() vectorizes too), latch scratch [bram * lanes + lane].
     */
    AlignedVec<uint64_t> slots64_, regValues64_, latchTmp64_;
    std::vector<AlignedVec<uint64_t>> bramMems64_;
    AlignedVec<uint32_t> slots32_, regValues32_, latchTmp32_;
    std::vector<AlignedVec<uint32_t>> bramMems32_;
};

} // namespace rtl
} // namespace fleet

#endif // FLEET_RTL_BATCH_SIM_H
