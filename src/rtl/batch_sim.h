#ifndef FLEET_RTL_BATCH_SIM_H
#define FLEET_RTL_BATCH_SIM_H

/**
 * @file
 * Batched evaluation of one TapeProgram across many independent circuit
 * replicas ("lanes") in structure-of-arrays layout: slot s of lane l
 * lives at values[s * lanes + l], so the inner per-lane loop of every
 * tape op is a contiguous, branch-light sweep the compiler
 * auto-vectorizes. This is what makes the cycle-accurate RTL backend
 * viable at full PU counts: all PUs of a memory channel advance through
 * the same op tape together instead of each replica re-dispatching the
 * whole netlist.
 *
 * Lanes are fully independent (separate registers, BRAMs, inputs); the
 * batch is bit-identical to running `lanes` scalar TapeSimulators side
 * by side. evalLane()/stepLane() run a single lane standalone, so one
 * lane can also serve as an ordinary ProcessingUnit in single-PU
 * testbenches.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/tape.h"

namespace fleet {
namespace rtl {

class BatchSimulator
{
  public:
    BatchSimulator(std::shared_ptr<const TapeProgram> tape, int lanes);

    int lanes() const { return lanes_; }
    const TapeProgram &tape() const { return *tape_; }

    /**
     * Lane element width in bits: 32 when no observable value depends
     * on bits above 32 anywhere in the circuit (TapeProgram::fits32) —
     * half the SoA traffic, twice the SIMD lanes per vector — else 64.
     * Ports, registers and BRAMs are bit-identical either way; value()
     * on an interior node wider than 32 bits may be truncated to its
     * low 32 bits in 32-bit mode.
     */
    int elementBits() const { return elem32_ ? 32 : 64; }

    void reset();
    void resetLane(int lane);
    void setInput(int lane, int port_index, uint64_t value)
    {
        int32_t s = tape_->inputSlot[port_index];
        if (s < 0)
            return;
        uint64_t v = truncTo(value, tape_->inputWidth[port_index]);
        if (elem32_)
            slots32_[size_t(s) * lanes_ + lane] = uint32_t(v);
        else
            slots64_[size_t(s) * lanes_ + lane] = v;
    }

    /** Evaluate every lane's combinational logic (SoA, vectorized). */
    void evalAll();
    /** Evaluate one lane only (scalar; standalone-lane use). */
    void evalLane(int lane);

    /** Value of a source-circuit node as of the last eval. */
    uint64_t value(int lane, NodeId source_node) const
    {
        size_t idx = size_t(tape_->slotOf(source_node)) * lanes_ + lane;
        return elem32_ ? slots32_[idx] : slots64_[idx];
    }

    /** Clock edge for every lane. */
    void step();
    /** Clock edge for one lane only. */
    void stepLane(int lane);

    uint64_t regValue(int lane, int reg_index) const;
    uint64_t bramWord(int lane, int bram_index, int addr) const;

  private:
    void stepRange(int lane_lo, int lane_hi);

    std::shared_ptr<const TapeProgram> tape_;
    int lanes_;
    bool elem32_; ///< Storage element type; see elementBits().

    /**
     * Exactly one of the two storage sets is sized, per elem32_.
     * Layout in both: slots [slot * lanes + lane], regs
     * [reg * lanes + lane], each BRAM [addr * lanes + lane] (SoA so
     * step() vectorizes too), latch scratch [bram * lanes + lane].
     */
    std::vector<uint64_t> slots64_, regValues64_, latchTmp64_;
    std::vector<std::vector<uint64_t>> bramMems64_;
    std::vector<uint32_t> slots32_, regValues32_, latchTmp32_;
    std::vector<std::vector<uint32_t>> bramMems32_;
};

} // namespace rtl
} // namespace fleet

#endif // FLEET_RTL_BATCH_SIM_H
