#ifndef FLEET_RTL_JIT_H
#define FLEET_RTL_JIT_H

/**
 * @file
 * Native compilation of a TapeProgram (ISSUE 9): instead of walking the
 * 32-byte micro-ops every cycle, render the whole tape as straight-line
 * C — one fused lane loop per chunk of ops in the batch engine's
 * structure-of-arrays layout, with the lane count and every constant
 * slot baked in as compile-time literals — compile it with the host
 * toolchain, dlopen() the shared object, and evaluate the PU population
 * by calling the two generated entry points:
 *
 *     fleet_jit_eval(slots, lane_lo, lane_hi)   // comb evaluation
 *     fleet_jit_step(slots, regs, brams, lo, hi) // clock edge
 *
 * Why this wins over the interpreter: the SoA sweep is memory-bound and
 * dispatch-bound — every op re-loads its operands from the slot array
 * and re-enters the opcode switch. The generated code keeps each op's
 * result in a local for its in-chunk consumers (operand loads largely
 * vanish), the per-op lane loops fuse into a handful of long loops the
 * host compiler vectorizes with the lane count known statically, and
 * there is no dispatch at all.
 *
 * Determinism contract: the emitted expressions replicate
 * evalTapeOps()'s masking, shift guards, sign-extension rebasing and
 * read-first BRAM step ordering exactly, per lane, so a JIT-backed
 * batch is bit-identical to BatchSimulator's interpreter on every
 * exactly-observed value: output-port nodes, registers (regValue),
 * BRAM words (bramWord), and therefore RunReports and traces —
 * enforced by tests/rtl_jit_test.cc and the random-program property
 * suite. Interior (non-output) node values are not materialized unless
 * the clock edge or a later chunk reads them — value() on such a node
 * may return a stale result, the same observability weakening
 * TapeProgram::fits32 already applies to wide interior nodes.
 *
 * Artifacts are cached on disk keyed by cacheKey() (tape content hash +
 * lane count + element width + emitter version); a cached .so embeds
 * the key and is re-verified at load, so corrupted or stale entries
 * fall back to a fresh compile. Compilation is best-effort by design:
 * every failure path (FLEET_JIT_DISABLE=1, no toolchain, compile or
 * dlopen error) returns a Status instead of throwing, and the system
 * layer (system/fleet_system.cc) degrades the slot to the RtlTape
 * interpreter with a structured log line.
 *
 * Environment knobs:
 *   FLEET_JIT_DISABLE    nonempty & != "0": report unavailable.
 *   FLEET_JIT_CC         compiler executable (default: cc, gcc, clang).
 *   FLEET_JIT_CACHE_DIR  artifact directory (default:
 *                        $TMPDIR/fleet-jit-cache-<uid>).
 */

#include <cstdint>
#include <memory>
#include <string>

#include "rtl/tape.h"
#include "util/status.h"

namespace fleet {
namespace rtl {

struct JitOptions
{
    /** SoA lane count the code is specialized for (baked as a literal;
     * part of the cache key). */
    int lanes = 1;
    /** Artifact directory; "" = FLEET_JIT_CACHE_DIR or the per-user
     * default under $TMPDIR. */
    std::string cacheDir;
    /** Compiler executable; "" = FLEET_JIT_CC, then cc/gcc/clang. */
    std::string compiler;
    /** Bypass the in-process and on-disk caches (cache tests). */
    bool forceRecompile = false;
};

/** A compiled-and-loaded tape. Immutable and thread-safe after
 * compile(); one instance is shared by every BatchSimulator with the
 * same (tape, lanes). */
class JitProgram
{
  public:
    /**
     * Ok when a JIT compile can plausibly succeed right now: platform
     * supported, not disabled via FLEET_JIT_DISABLE, and a working C
     * compiler found. InvalidArgument with the reason otherwise. Cheap
     * enough to call per system construction.
     */
    static Status availability(const JitOptions &opts = {});

    /**
     * Emit, compile, load. Returns nullptr (never throws) on any
     * failure, with the reason in *status: unavailability is
     * InvalidArgument, a compile or load error is InternalError. The
     * returned program is shared: a second compile of the same
     * (tape, lanes) in this process returns the same instance, and a
     * cached on-disk artifact is reused without invoking the compiler.
     */
    static std::shared_ptr<const JitProgram>
    compile(const TapeProgram &tape, const JitOptions &opts = {},
            Status *status = nullptr);

    ~JitProgram();
    JitProgram(const JitProgram &) = delete;
    JitProgram &operator=(const JitProgram &) = delete;

    int lanes() const { return lanes_; }
    /** 32 under TapeProgram::fits32 (matches BatchSimulator), else 64. */
    int elementBits() const { return elem32_ ? 32 : 64; }
    uint64_t key() const { return key_; }
    /** True when the .so was reused from disk (no compiler invoked). */
    bool fromDiskCache() const { return fromDiskCache_; }
    /** Wall milliseconds spent emitting + compiling + loading. Near
     * zero on a disk-cache hit. */
    double compileMillis() const { return compileMillis_; }
    const std::string &artifactPath() const { return artifactPath_; }

    /**
     * Evaluate combinational logic for lanes [lane_lo, lane_hi).
     * `slots` is BatchSimulator's SoA slot array (uint32_t* or
     * uint64_t* per elementBits()).
     */
    void eval(void *slots, int lane_lo, int lane_hi) const
    {
        eval_(slots, lane_lo, lane_hi);
    }

    /**
     * Clock edge for lanes [lane_lo, lane_hi): BRAM read-first latches
     * + writes, register commits, then publish — the exact
     * TapeSimulator::step() ordering. `bram_mems[i]` is BRAM i's SoA
     * array ([addr * lanes + lane]).
     */
    void step(void *slots, void *regs, void *const *bram_mems,
              int lane_lo, int lane_hi) const
    {
        step_(slots, regs, bram_mems, lane_lo, lane_hi);
    }

    /** Cache key: tape contentHash() mixed with lanes, element width
     * and the emitter version. */
    static uint64_t cacheKey(const TapeProgram &tape, int lanes);

    /** Clear the in-process program registry (cache-behaviour tests
     * only), forcing the next compile() to consult the on-disk cache. */
    static void dropInProcessCacheForTests();

    /** The generated C translation unit (tests and debugging). */
    static std::string emitSource(const TapeProgram &tape, int lanes);

  private:
    JitProgram() = default;

    using EvalFn = void (*)(void *, int, int);
    using StepFn = void (*)(void *, void *, void *const *, int, int);

    void *handle_ = nullptr;
    EvalFn eval_ = nullptr;
    StepFn step_ = nullptr;
    int lanes_ = 0;
    bool elem32_ = false;
    uint64_t key_ = 0;
    bool fromDiskCache_ = false;
    double compileMillis_ = 0.0;
    std::string artifactPath_;
};

} // namespace rtl
} // namespace fleet

#endif // FLEET_RTL_JIT_H
