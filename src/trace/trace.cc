#include "trace/trace.h"

#include <sstream>

namespace fleet {
namespace trace {

// ---------------------------------------------------------------------------
// Histogram

uint64_t
Histogram::samples() const
{
    uint64_t total = 0;
    for (uint64_t count : buckets)
        total += count;
    return total;
}

uint64_t
Histogram::weightedSum() const
{
    uint64_t sum = 0;
    for (size_t v = 0; v < buckets.size(); ++v)
        sum += v * buckets[v];
    return sum;
}

double
Histogram::mean() const
{
    uint64_t n = samples();
    return n ? double(weightedSum()) / double(n) : 0.0;
}

bool
operator==(const Histogram &a, const Histogram &b)
{
    return a.name == b.name && a.buckets == b.buckets;
}

// ---------------------------------------------------------------------------
// CounterSet

void
CounterSet::set(std::string_view key, uint64_t value)
{
    for (auto &entry : values) {
        if (entry.first == key) {
            entry.second = value;
            return;
        }
    }
    values.emplace_back(std::string(key), value);
}

void
CounterSet::add(std::string_view key, uint64_t delta)
{
    for (auto &entry : values) {
        if (entry.first == key) {
            entry.second += delta;
            return;
        }
    }
    values.emplace_back(std::string(key), delta);
}

uint64_t
CounterSet::get(std::string_view key) const
{
    for (const auto &entry : values)
        if (entry.first == key)
            return entry.second;
    return 0;
}

bool
CounterSet::has(std::string_view key) const
{
    for (const auto &entry : values)
        if (entry.first == key)
            return true;
    return false;
}

bool
operator==(const CounterSet &a, const CounterSet &b)
{
    return a.name == b.name && a.values == b.values;
}

// ---------------------------------------------------------------------------
// Event structures

bool
operator==(const Span &a, const Span &b)
{
    return a.phase == b.phase && a.beginCycle == b.beginCycle &&
           a.endCycle == b.endCycle;
}

bool
operator==(const Marker &a, const Marker &b)
{
    return a.cycle == b.cycle && a.label == b.label;
}

bool
operator==(const JobSpan &a, const JobSpan &b)
{
    return a.jobId == b.jobId && a.beginCycle == b.beginCycle &&
           a.endCycle == b.endCycle;
}

bool
operator==(const Lane &a, const Lane &b)
{
    return a.globalPu == b.globalPu && a.spans == b.spans &&
           a.markers == b.markers && a.jobs == b.jobs &&
           a.droppedSpans == b.droppedSpans;
}

bool
operator==(const CounterTrack &a, const CounterTrack &b)
{
    return a.name == b.name && a.samples == b.samples;
}

const CounterSet *
ChannelTrace::find(std::string_view name) const
{
    for (const auto &set : counters)
        if (set.name == name)
            return &set;
    return nullptr;
}

bool
operator==(const ChannelTrace &a, const ChannelTrace &b)
{
    return a.channel == b.channel && a.label == b.label &&
           a.cycles == b.cycles && a.counters == b.counters &&
           a.histograms == b.histograms && a.lanes == b.lanes &&
           a.tracks == b.tracks;
}

// ---------------------------------------------------------------------------
// TraceReport

const CounterSet *
TraceReport::find(std::string_view name) const
{
    for (const auto &channel : channels)
        if (const CounterSet *set = channel.find(name))
            return set;
    return nullptr;
}

std::string
TraceReport::countersSummary() const
{
    std::ostringstream os;
    for (const auto &channel : channels) {
        os << "channel " << channel.channel << " (" << channel.cycles
           << " cycles)\n";
        for (const auto &set : channel.counters) {
            os << "  " << set.name << ":";
            for (const auto &[key, value] : set.values)
                os << " " << key << "=" << value;
            os << "\n";
        }
        for (const auto &histogram : channel.histograms) {
            os << "  " << histogram.name << ": samples "
               << histogram.samples() << ", mean ";
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3f", histogram.mean());
            os << buf << "\n";
        }
    }
    return os.str();
}

void
TraceReport::writeCountersJson(std::FILE *f, const char *indent) const
{
    std::fprintf(f, "%s[\n", indent);
    bool first = true;
    for (const auto &channel : channels) {
        for (const auto &set : channel.counters) {
            if (!first)
                std::fprintf(f, ",\n");
            first = false;
            std::fprintf(f, "%s  {\"component\": \"%s\"", indent,
                         set.name.c_str());
            for (const auto &[key, value] : set.values)
                std::fprintf(f, ", \"%s\": %llu", key.c_str(),
                             static_cast<unsigned long long>(value));
            std::fprintf(f, "}");
        }
    }
    std::fprintf(f, "\n%s]", indent);
}

bool
operator==(const TraceReport &a, const TraceReport &b)
{
    // The config knobs only shape what was collected; the collected
    // data itself is what determinism is asserted over.
    return a.channels == b.channels && a.sessionTracks == b.sessionTracks;
}

// ---------------------------------------------------------------------------
// ShardTrace

ShardTrace::ShardTrace(int channel, const TraceConfig &config,
                       int max_outstanding_reads, int max_outstanding_writes)
    : channel_(channel), config_(config),
      readDepth_("dram_read_queue_depth", max_outstanding_reads),
      writeDepth_("dram_write_queue_depth", max_outstanding_writes)
{
    readTrack_.name = "dram read queue";
    writeTrack_.name = "dram write queue";
}

void
ShardTrace::addPu(int global_index)
{
    PuCollect pu;
    pu.lane.globalPu = global_index;
    pus_.push_back(std::move(pu));
}

void
ShardTrace::closeSpan(PuCollect &pu, uint64_t end_cycle)
{
    if (!pu.hasOpen || end_cycle == pu.openBegin)
        return;
    // "Done" is rendered as a gap between spans, not a span of its own.
    if (pu.openPhase != PuPhase::Done) {
        if (pu.lane.spans.size() <
            static_cast<size_t>(config_.maxSpansPerLane))
            pu.lane.spans.push_back(
                Span{pu.openPhase, pu.openBegin, end_cycle});
        else
            ++pu.lane.droppedSpans;
    }
    pu.hasOpen = false;
}

void
ShardTrace::puCycle(int local, uint64_t cycle, PuPhase phase)
{
    PuCollect &pu = pus_[local];
    ++pu.phaseCycles[static_cast<int>(phase)];
    if (!config_.events)
        return;
    if (pu.hasOpen && pu.openPhase == phase)
        return; // Coalesce: the span just grows.
    closeSpan(pu, cycle);
    pu.openPhase = phase;
    pu.openBegin = cycle;
    pu.hasOpen = true;
}

void
ShardTrace::jobSpan(int local, uint64_t job_id, uint64_t begin_cycle,
                    uint64_t end_cycle)
{
    if (!config_.events)
        return;
    pus_[local].lane.jobs.push_back(
        JobSpan{job_id, begin_cycle, end_cycle});
}

void
ShardTrace::marker(int local, uint64_t cycle, std::string label)
{
    if (!config_.events)
        return;
    pus_[local].lane.markers.push_back(Marker{cycle, std::move(label)});
}

void
ShardTrace::dramCycle(uint64_t cycle, int outstanding_reads,
                      int outstanding_writes)
{
    readDepth_.sample(outstanding_reads);
    writeDepth_.sample(outstanding_writes);
    if (!config_.events)
        return;
    int quantum = config_.counterSampleCycles < 1
                      ? 1
                      : config_.counterSampleCycles;
    if (cycle % static_cast<uint64_t>(quantum) != 0)
        return;
    // Skip repeats so flat stretches cost one sample, not thousands.
    auto push = [cycle](CounterTrack &track, uint64_t value) {
        if (track.samples.empty() || track.samples.back().second != value)
            track.samples.emplace_back(cycle, value);
    };
    push(readTrack_, outstanding_reads);
    push(writeTrack_, outstanding_writes);
}

uint64_t
ShardTrace::phaseCycles(int local, PuPhase phase) const
{
    return pus_[local].phaseCycles[static_cast<int>(phase)];
}

ChannelTrace
ShardTrace::finish(uint64_t cycles)
{
    ChannelTrace out;
    out.channel = channel_;
    out.cycles = cycles;
    if (config_.counters) {
        out.histograms.push_back(readDepth_);
        out.histograms.push_back(writeDepth_);
    }
    if (config_.events) {
        for (auto &pu : pus_) {
            closeSpan(pu, cycles);
            out.lanes.push_back(std::move(pu.lane));
        }
        out.tracks.push_back(std::move(readTrack_));
        out.tracks.push_back(std::move(writeTrack_));
    }
    return out;
}

} // namespace trace
} // namespace fleet
