#ifndef FLEET_TRACE_TAXONOMY_H
#define FLEET_TRACE_TAXONOMY_H

/**
 * @file
 * The one place the simulator classifies why a processing unit is not
 * making progress. Three layers consume the same taxonomy — the
 * per-cycle stall counters and trace phases, the forward-progress
 * watchdog's diagnostic dump, and the tests that assert on either — so
 * the classification cannot drift between them (ISSUE 3).
 *
 * A cycle in which an unfinished unit neither consumes a token nor
 * produces one is attributed to exactly one cause, in priority order:
 *
 *  - input-starved: the unit wants a token but its buffer is empty and
 *    the stream is not yet exhausted (the memory system is behind);
 *  - output-blocked: the unit has a token to emit but its output buffer
 *    is full (the write path is behind);
 *  - internal-spin: neither — the unit is taking virtual cycles inside
 *    its program (a multi-cycle `while`, or a non-terminating loop; the
 *    watchdog cannot tell legitimate long computation from a hang, only
 *    that the IO boundary saw no progress).
 */

namespace fleet {
namespace trace {

enum class StallCause
{
    InputStarved,
    OutputBlocked,
    InternalSpin,
};

inline const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::InputStarved:
        return "input-starved";
      case StallCause::OutputBlocked:
        return "output-blocked";
      default:
        return "internal-spin";
    }
}

/** The unit wants a token it cannot have this cycle. */
constexpr bool
inputStarved(bool wants_input, bool input_valid, bool input_finished)
{
    return wants_input && !input_valid && !input_finished;
}

/** The unit offers a token its output buffer cannot take this cycle. */
constexpr bool
outputBlocked(bool output_valid, bool output_ready)
{
    return output_valid && !output_ready;
}

/**
 * Attribute a no-progress cycle to its single cause. Starvation wins
 * over blockage when both hold (the input side stalled first in the
 * pipeline), so the three buckets partition the stalled cycles.
 */
constexpr StallCause
classifyStall(bool wants_input, bool input_valid, bool input_finished,
              bool output_valid, bool output_ready)
{
    if (inputStarved(wants_input, input_valid, input_finished))
        return StallCause::InputStarved;
    if (outputBlocked(output_valid, output_ready))
        return StallCause::OutputBlocked;
    return StallCause::InternalSpin;
}

/**
 * Per-(unit, cycle) phase: every simulated cycle of every attached unit
 * lands in exactly one bucket, so per-unit phase counters sum to the
 * channel's cycle count — the conservation invariant the trace test
 * harness checks. `Done` covers both cycles after output_finished and
 * cycles a contained (failed) unit sat quarantined.
 */
enum class PuPhase
{
    Active,
    InputStarved,
    OutputBlocked,
    InternalSpin,
    Done,
};

constexpr int kNumPuPhases = 5;

inline const char *
puPhaseName(PuPhase phase)
{
    switch (phase) {
      case PuPhase::Active:
        return "active";
      case PuPhase::InputStarved:
        return stallCauseName(StallCause::InputStarved);
      case PuPhase::OutputBlocked:
        return stallCauseName(StallCause::OutputBlocked);
      case PuPhase::InternalSpin:
        return stallCauseName(StallCause::InternalSpin);
      default:
        return "done";
    }
}

constexpr PuPhase
phaseForStall(StallCause cause)
{
    switch (cause) {
      case StallCause::InputStarved:
        return PuPhase::InputStarved;
      case StallCause::OutputBlocked:
        return PuPhase::OutputBlocked;
      default:
        return PuPhase::InternalSpin;
    }
}

} // namespace trace
} // namespace fleet

#endif // FLEET_TRACE_TAXONOMY_H
