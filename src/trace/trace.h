#ifndef FLEET_TRACE_TRACE_H
#define FLEET_TRACE_TRACE_H

/**
 * @file
 * Cycle-level observability for the full-system simulator (ISSUE 3): a
 * zero-overhead-when-disabled layer that turns a run into (a) structured
 * per-component `CounterSet`s — bytes moved, DRAM beats, stall cycles
 * split by the shared taxonomy (taxonomy.h), queue-occupancy histograms
 * — and (b) span-based event traces exportable as Chrome `trace_event`
 * JSON, so a whole run opens in Perfetto with one process per memory
 * channel and one lane per processing unit.
 *
 * Collection discipline: components keep their existing cheap native
 * counters; the only *new* per-cycle work (phase classification, span
 * coalescing, occupancy histograms) happens behind a null check on the
 * shard's collector pointer, exactly like the fault layer — a disabled
 * TraceConfig allocates nothing and adds no work to the simulation
 * loop, and an *enabled* one is purely observational, so traced and
 * untraced runs are cycle- and bit-identical.
 *
 * The counters are designed to be *conserved* across layer boundaries
 * (sum of per-PU payload bits == controller bits == DRAM bursts x burst
 * size; per-PU phase cycles sum to the channel cycle count; histogram
 * mass equals cycles sampled). tests/trace_counters_test.cc asserts
 * these invariants for every application on both PU backends at every
 * thread count.
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/taxonomy.h"
#include "util/status.h"

namespace fleet {
namespace trace {

struct TraceConfig
{
    /** Collect per-component CounterSets and occupancy histograms. */
    bool counters = false;
    /** Record span events for Chrome trace_event / Perfetto export. */
    bool events = false;
    /**
     * Events mode: sample the DRAM queue-depth counter tracks every
     * this-many cycles (1 = every cycle; larger keeps traces small).
     */
    int counterSampleCycles = 16;
    /**
     * Events mode: per-lane span cap. A runaway run stops recording new
     * spans past the cap (dropped spans are counted and reported in the
     * trace metadata) instead of growing without bound.
     */
    uint64_t maxSpansPerLane = 1 << 18;

    bool enabled() const { return counters || events; }
};

/**
 * Fixed-range occupancy histogram: bucket v counts cycles the sampled
 * value was exactly v (values past the range clamp into the last
 * bucket). Sized from the queue's hard capacity, so no clamping occurs
 * in practice and weightedSum() equals the exact occupancy integral.
 */
struct Histogram
{
    std::string name;
    std::vector<uint64_t> buckets;

    Histogram() = default;
    Histogram(std::string histogram_name, int max_value)
        : name(std::move(histogram_name)), buckets(max_value + 1, 0)
    {
    }

    void sample(uint64_t value)
    {
        size_t idx = value < buckets.size() ? static_cast<size_t>(value)
                                            : buckets.size() - 1;
        ++buckets[idx];
    }
    uint64_t samples() const;
    /** Sum of value x count — the occupancy integral. */
    uint64_t weightedSum() const;
    double mean() const;
};

bool operator==(const Histogram &a, const Histogram &b);

/**
 * One component's counters: an ordered list of (key, value) pairs under
 * a hierarchical component name ("ch0/dram", "ch0/pu5", ...). Ordered
 * (not a map) so traversal, export, and equality are deterministic.
 */
struct CounterSet
{
    std::string name;
    std::vector<std::pair<std::string, uint64_t>> values;

    void set(std::string_view key, uint64_t value);
    void add(std::string_view key, uint64_t delta);
    /** Value for `key`, or 0 if the key was never set. */
    uint64_t get(std::string_view key) const;
    bool has(std::string_view key) const;
};

bool operator==(const CounterSet &a, const CounterSet &b);

/** Half-open [begin, end) cycle interval a unit spent in one phase. */
struct Span
{
    PuPhase phase;
    uint64_t beginCycle = 0;
    uint64_t endCycle = 0;
};

bool operator==(const Span &a, const Span &b);

/** A point-in-time annotation on a lane (containment, finish). */
struct Marker
{
    uint64_t cycle = 0;
    std::string label;
};

bool operator==(const Marker &a, const Marker &b);

/**
 * One job's residency on a unit's lane (the multi-stream job runtime,
 * runtime/session.h): [beginCycle, endCycle) covers arm-to-re-arm, so a
 * job's span encloses every phase span of its execution plus the idle
 * tail until the scheduler re-armed the slot. One-shot runs record no
 * job spans.
 */
struct JobSpan
{
    uint64_t jobId = 0;
    uint64_t beginCycle = 0;
    uint64_t endCycle = 0;
};

bool operator==(const JobSpan &a, const JobSpan &b);

/** One processing unit's timeline within its channel. */
struct Lane
{
    int globalPu = -1; ///< Global PU index (Chrome tid = local + 1).
    std::vector<Span> spans;
    std::vector<Marker> markers;
    /** Job runtime only: one enclosing span per job the slot ran. */
    std::vector<JobSpan> jobs;
    uint64_t droppedSpans = 0; ///< Spans past TraceConfig::maxSpansPerLane.
};

bool operator==(const Lane &a, const Lane &b);

/** Sampled value track (DRAM queue depths; Chrome "C" counter events). */
struct CounterTrack
{
    std::string name;
    std::vector<std::pair<uint64_t, uint64_t>> samples; ///< (cycle, value).
};

bool operator==(const CounterTrack &a, const CounterTrack &b);

/** Canonical session-track name for a per-tenant metric (ISSUE 8):
 * "session/tenant<k>/<metric>". The job runtime emits cumulative
 * queue_wait_cycles and service_cycles tracks per tenant under these
 * names, alongside the global session tracks. */
inline std::string
tenantTrackName(uint32_t tenant, const char *metric)
{
    return "session/tenant" + std::to_string(tenant) + "/" + metric;
}

/** Everything observed on one memory channel. */
struct ChannelTrace
{
    int channel = -1;
    /**
     * Process-row label for the Chrome export; empty = the default
     * "channel <n>". The cluster layer (ISSUE 10) sets
     * "dev<d>/channel <c>" when merging device traces so each device
     * renders as its own group of process rows.
     */
    std::string label;
    uint64_t cycles = 0;
    /** Counters mode: dram / input_ctrl / output_ctrl / one per PU. */
    std::vector<CounterSet> counters;
    std::vector<Histogram> histograms;
    /** Events mode: one lane per PU (local order) + channel tracks. */
    std::vector<Lane> lanes;
    std::vector<CounterTrack> tracks;

    const CounterSet *find(std::string_view name) const;
};

bool operator==(const ChannelTrace &a, const ChannelTrace &b);

/**
 * The trace of a whole run, attached to RunReport when tracing is on.
 * Deterministic: serial and worker-pool runs of the same configuration
 * produce equal TraceReports (part of the conservation test harness).
 */
struct TraceReport
{
    TraceConfig config;
    double clockMHz = 125.0;
    std::vector<ChannelTrace> channels;
    /**
     * Scheduler-level tracks recorded above the channels by the job
     * runtime / serving layer (ISSUE 6): job-queue depth, jobs in
     * flight, and cumulative queue-wait cycles, sampled at scheduler
     * round boundaries on the session clock (max over shard cycles).
     * Empty for one-shot runs. Exported under a synthetic "session"
     * process by writeChromeTrace, and compared by value — the
     * determinism fences cover the serving schedule too.
     */
    std::vector<CounterTrack> sessionTracks;

    /** Counter set by full name ("ch2/pu7"), or null. */
    const CounterSet *find(std::string_view name) const;

    /**
     * Write the events as Chrome trace_event JSON (open in Perfetto or
     * chrome://tracing): one process per channel, one thread lane per
     * PU, counter tracks for the DRAM queues. 1 cycle = 1 us of trace
     * time. Fails with InvalidArgument if events were not recorded.
     */
    Status writeChromeTrace(const std::string &path) const;

    /** Human-readable per-channel counter digest (for --counters). */
    std::string countersSummary() const;

    /**
     * Append the counters as JSON (an array of {"component": ...,
     * counters...} objects) onto an already-open file — the
     * BENCH_PR.json flow. `indent` prefixes every emitted line.
     */
    void writeCountersJson(std::FILE *f, const char *indent) const;
};

bool operator==(const TraceReport &a, const TraceReport &b);
inline bool
operator!=(const TraceReport &a, const TraceReport &b)
{
    return !(a == b);
}

/**
 * Per-shard collector, owned by a ChannelShard when tracing is enabled
 * (null otherwise — the null check is the entire disabled-mode cost).
 * The shard calls puCycle() once per attached unit per simulated cycle
 * and dramCycle() once per cycle; finish() freezes the ChannelTrace.
 */
class ShardTrace
{
  public:
    ShardTrace(int channel, const TraceConfig &config,
               int max_outstanding_reads, int max_outstanding_writes);

    /** Register the next unit (call in local-index order). */
    void addPu(int global_index);

    /** Account `cycle` to `phase` for local unit `local`. */
    void puCycle(int local, uint64_t cycle, PuPhase phase);

    /** A point event on a unit's lane (containment, watchdog trip). */
    void marker(int local, uint64_t cycle, std::string label);

    /** Record one job's [begin, end) residency on a unit's lane. */
    void jobSpan(int local, uint64_t job_id, uint64_t begin_cycle,
                 uint64_t end_cycle);

    /** Sample the DRAM queues for this cycle. */
    void dramCycle(uint64_t cycle, int outstanding_reads,
                   int outstanding_writes);

    uint64_t phaseCycles(int local, PuPhase phase) const;

    /**
     * Close open spans at `cycles` and assemble the per-channel trace.
     * The caller appends the component CounterSets (harvested from the
     * DRAM model, controllers, and units) afterwards.
     */
    ChannelTrace finish(uint64_t cycles);

  private:
    struct PuCollect
    {
        Lane lane;
        uint64_t phaseCycles[kNumPuPhases] = {};
        PuPhase openPhase = PuPhase::Active;
        uint64_t openBegin = 0;
        bool hasOpen = false;
    };

    void closeSpan(PuCollect &pu, uint64_t end_cycle);

    int channel_;
    TraceConfig config_;
    std::vector<PuCollect> pus_;
    Histogram readDepth_;
    Histogram writeDepth_;
    CounterTrack readTrack_;
    CounterTrack writeTrack_;
};

} // namespace trace
} // namespace fleet

#endif // FLEET_TRACE_TRACE_H
