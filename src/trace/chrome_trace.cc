/**
 * @file
 * Chrome trace_event JSON export (the "JSON Array Format" consumed by
 * Perfetto and chrome://tracing). Mapping:
 *
 *  - process (pid)  = memory channel;
 *  - thread (tid)   = processing unit lane (tid = local index + 1;
 *                     tid 0 is the channel's own counter track);
 *  - complete event ("ph":"X") = a coalesced phase span (active /
 *    input-starved / output-blocked / internal-spin);
 *  - instant event ("ph":"i")  = a containment or diagnostic marker;
 *  - counter event ("ph":"C")  = DRAM queue-depth samples.
 *
 * Timestamps are in microseconds by the format's definition; we map
 * 1 simulated cycle = 1 us so durations read directly as cycle counts.
 * Events are emitted lane by lane in span order, so timestamps are
 * monotonically non-decreasing within every (pid, tid) — the property
 * the golden-schema test asserts.
 */

#include <cstdio>
#include <vector>

#include "trace/trace.h"

namespace fleet {
namespace trace {

namespace {

void
writeMeta(std::FILE *f, int pid, int tid, const char *kind,
          const std::string &name, bool &first)
{
    std::fprintf(f, "%s  {\"ph\":\"M\",\"pid\":%d,\"tid\":%d,", first ? "" : ",\n",
                 pid, tid);
    std::fprintf(f, "\"name\":\"%s\",\"args\":{\"name\":\"%s\"}}", kind,
                 name.c_str());
    first = false;
}

} // namespace

Status
TraceReport::writeChromeTrace(const std::string &path) const
{
    if (!config.events)
        return Status::make(StatusCode::InvalidArgument,
                            "writeChromeTrace: run was not traced with "
                            "TraceConfig::events enabled");
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return Status::make(StatusCode::IoError,
                            "cannot write trace file " + path);

    uint64_t dropped = 0;
    std::fprintf(f, "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    bool first = true;
    for (const auto &channel : channels) {
        const int pid = channel.channel;
        char name[64];
        if (channel.label.empty())
            std::snprintf(name, sizeof(name), "channel %d", pid);
        else
            std::snprintf(name, sizeof(name), "%s",
                          channel.label.c_str());
        writeMeta(f, pid, 0, "process_name", name, first);
        writeMeta(f, pid, 0, "thread_name", "dram", first);
        for (size_t l = 0; l < channel.lanes.size(); ++l) {
            const Lane &lane = channel.lanes[l];
            const int tid = static_cast<int>(l) + 1;
            std::snprintf(name, sizeof(name), "PU %d", lane.globalPu);
            writeMeta(f, pid, tid, "thread_name", name, first);
            // Merge job spans (runtime/session.h) with phase spans by
            // begin cycle — a job span opens at its arm cycle, before
            // any phase span it enclosed — to keep timestamps
            // non-decreasing within the lane.
            size_t si = 0, ji = 0;
            while (si < lane.spans.size() || ji < lane.jobs.size()) {
                bool take_job =
                    ji < lane.jobs.size() &&
                    (si >= lane.spans.size() ||
                     lane.jobs[ji].beginCycle <= lane.spans[si].beginCycle);
                if (take_job) {
                    const JobSpan &job = lane.jobs[ji++];
                    std::fprintf(
                        f,
                        ",\n  {\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                        "\"name\":\"job %llu\",\"ts\":%llu,\"dur\":%llu,"
                        "\"args\":{\"job\":%llu}}",
                        pid, tid,
                        static_cast<unsigned long long>(job.jobId),
                        static_cast<unsigned long long>(job.beginCycle),
                        static_cast<unsigned long long>(job.endCycle -
                                                        job.beginCycle),
                        static_cast<unsigned long long>(job.jobId));
                    continue;
                }
                const Span &span = lane.spans[si++];
                std::fprintf(
                    f,
                    ",\n  {\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                    "\"name\":\"%s\",\"ts\":%llu,\"dur\":%llu,"
                    "\"args\":{}}",
                    pid, tid, puPhaseName(span.phase),
                    static_cast<unsigned long long>(span.beginCycle),
                    static_cast<unsigned long long>(span.endCycle -
                                                    span.beginCycle));
            }
            for (const Marker &marker : lane.markers) {
                std::fprintf(
                    f,
                    ",\n  {\"ph\":\"i\",\"pid\":%d,\"tid\":%d,"
                    "\"name\":\"%s\",\"ts\":%llu,\"s\":\"t\"}",
                    pid, tid, marker.label.c_str(),
                    static_cast<unsigned long long>(marker.cycle));
            }
            dropped += lane.droppedSpans;
        }
        // All counter tracks share tid 0, so merge their samples by
        // cycle to keep timestamps non-decreasing within the lane.
        std::vector<size_t> cursor(channel.tracks.size(), 0);
        for (;;) {
            const CounterTrack *next = nullptr;
            size_t next_track = 0;
            for (size_t t = 0; t < channel.tracks.size(); ++t) {
                const CounterTrack &track = channel.tracks[t];
                if (cursor[t] >= track.samples.size())
                    continue;
                if (!next || track.samples[cursor[t]].first <
                                 next->samples[cursor[next_track]].first) {
                    next = &track;
                    next_track = t;
                }
            }
            if (!next)
                break;
            const auto &[cycle, value] = next->samples[cursor[next_track]++];
            std::fprintf(f,
                         ",\n  {\"ph\":\"C\",\"pid\":%d,\"tid\":0,"
                         "\"name\":\"%s\",\"ts\":%llu,"
                         "\"args\":{\"depth\":%llu}}",
                         pid, next->name.c_str(),
                         static_cast<unsigned long long>(cycle),
                         static_cast<unsigned long long>(value));
        }
    }
    // Scheduler-level tracks (job-queue depth, jobs in flight, ...)
    // live in their own synthetic process after the channels; samples
    // within a track are already cycle-ordered, and each track gets
    // its own tid so no cross-track merge is needed.
    if (!sessionTracks.empty()) {
        const int pid = static_cast<int>(channels.size());
        writeMeta(f, pid, 0, "process_name", "session", first);
        for (size_t t = 0; t < sessionTracks.size(); ++t) {
            const CounterTrack &track = sessionTracks[t];
            const int tid = static_cast<int>(t);
            for (const auto &[cycle, value] : track.samples) {
                std::fprintf(f,
                             ",\n  {\"ph\":\"C\",\"pid\":%d,\"tid\":%d,"
                             "\"name\":\"%s\",\"ts\":%llu,"
                             "\"args\":{\"value\":%llu}}",
                             pid, tid, track.name.c_str(),
                             static_cast<unsigned long long>(cycle),
                             static_cast<unsigned long long>(value));
            }
        }
    }
    std::fprintf(f,
                 "\n],\n\"otherData\": {\"cycles_per_us\": 1, "
                 "\"clock_mhz\": %.3f, \"dropped_spans\": %llu}\n}\n",
                 clockMHz, static_cast<unsigned long long>(dropped));
    if (std::fclose(f) != 0)
        return Status::make(StatusCode::IoError,
                            "error closing trace file " + path);
    return Status::make(StatusCode::Ok);
}

} // namespace trace
} // namespace fleet
