#ifndef FLEET_RUNTIME_SESSION_H
#define FLEET_RUNTIME_SESSION_H

/**
 * @file
 * The multi-stream job runtime (ISSUE 5): accept many independent jobs
 * — far more than there are processing units — and multiplex them onto
 * the fixed PU pool, re-arming each slot the moment its stream drains.
 * This is the paper's host runtime shape (Fleet §6): the FPGA's units
 * are a fixed resource that a server keeps continuously fed, not a
 * batch device that runs one stream set to completion.
 *
 * A Session owns a cluster::Cluster of session-mode FleetSystems
 * (numDevices devices × numSlots parked units, each pre-armed with one
 * of the session's programs; one device by default, where the cluster
 * is a zero-cost rename) and drives it in scheduler rounds:
 *
 *   1. *Harvest*, in global PU order: every drained slot's job is read
 *      back, retired into a JobReport, and its callback fired; jobs
 *      stranded on a halted channel are reported with the channel's
 *      status and the slot is marked dead.
 *   2. *Arm*, in global PU order, two sweeps (ISSUE 8): each parked
 *      live slot asks the configured Scheduler which queued job to run.
 *      Sweep one honours placement hints (JobTag::preferredLane);
 *      sweep two relaxes them, so no live slot idles while a
 *      program-compatible job is queued (work conservation).
 *   3. *Advance*: every channel shard steps up to epochCycles cycles
 *      on the worker pool (shards park early when they go idle).
 *
 * Determinism: harvesting and arming happen only at round boundaries,
 * in a fixed order, and every scheduling policy is a pure function of
 * simulated state (runtime/scheduler.h) — so the job→slot schedule is
 * bit-identical at any host thread count and across PU backends, for
 * every policy. The determinism and sched-property suites assert
 * exactly this.
 *
 * Multi-tenancy (ISSUE 8): jobs carry a JobTag (tenant, program class,
 * priority, placement hint); a Session can host several compiled
 * programs at once via per-slot SlotBindings (the mix is checked
 * against the device area model at construction), and per-tenant
 * queue-wait/service accounting is kept alongside the global counters.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "runtime/job_queue.h"
#include "runtime/scheduler.h"
#include "system/fleet_system.h"

namespace fleet {
namespace runtime {

struct SessionConfig
{
    /** Channel/DRAM/backends/fault/trace config for the underlying
     * session-mode FleetSystem (system::SystemConfig::inputRegionBytes
     * bounds the largest acceptable job stream). */
    system::SystemConfig system;
    /** Processing-unit slots in the pool, *per device*. */
    int numSlots = 8;
    /**
     * Cluster width (ISSUE 10): how many identical simulated devices
     * the session schedules across. Slots are pooled under global
     * device-major indices (device 0's slots first), and placement is
     * just scheduling: the same pluggable policy picks jobs for every
     * device's slots in one fixed-order arm sweep, so the placement is
     * a pure function of simulated state like everything else. With
     * the default of 1 the session is cycle-exact with the
     * pre-cluster, single-FleetSystem runtime.
     */
    int numDevices = 1;
    /** Inter-device link model (cluster::LinkParams); only observable
     * through cluster()/finishCluster() since independent jobs never
     * cross devices — pipelines (cluster/pipeline.h) do. */
    cluster::LinkParams link;
    /**
     * Cycles each shard advances per scheduler round. Smaller epochs
     * re-arm drained slots sooner (less idle tail per job) but cross
     * the host barrier more often; results are bit-identical for any
     * value — only wall-clock and slot idle time change.
     */
    uint64_t epochCycles = 2048;
    /**
     * Slot health quarantine (ISSUE 7): a slot that suffers this many
     * per-PU containment events (parity errors, output overflows) is
     * pulled out of the pool for good — it stops taking jobs and no
     * longer counts toward liveSlots(), so a slot with flaky hardware
     * degrades capacity instead of failing job after job. 0 (default)
     * disables quarantine. Scoring counts only per-PU faults: channel
     * halts already kill the whole channel's slots, and job-level
     * outcomes (truncation, deadline kills) say nothing about slot
     * health.
     */
    int quarantineAfterFaults = 0;
    /**
     * Halted-channel recovery (ISSUE 7): when true, jobs in flight on
     * a channel that halts are re-queued at the *front* of the FIFO
     * (original ids, original arrival cycles, in PU order) and re-run
     * on surviving channels instead of stranding with the channel's
     * status. Costs one stream copy per armed job. When no live slot
     * survives, jobs strand as before. Default off: the pre-recovery
     * stranding semantics.
     */
    bool requeueStranded = false;
    /**
     * Scheduling policy (ISSUE 8): FIFO (legacy, default), strict
     * priority classes, shortest-job-first, or weighted fair queuing
     * across tenants. With the default (Fifo, no factory) the arm
     * order is cycle-exact with the pre-scheduler runtime.
     */
    SchedulerConfig scheduler;
    /**
     * Pluggable override: when set, the session builds its scheduler
     * from this factory instead of makeScheduler(scheduler). The
     * returned policy must be a pure function of simulated state
     * (runtime/scheduler.h) or the bit-identity fences break.
     */
    std::function<std::unique_ptr<Scheduler>()> schedulerFactory;
};

/** Per-tenant session accounting (ISSUE 8): the scheduler-side slice
 * of the queue-wait/service breakdown (the serving layer adds
 * admission-side counters in serve::ServiceStats). */
struct TenantSessionStats
{
    uint64_t completed = 0; ///< Reports finalized for this tenant.
    uint64_t queueWaitCycles = 0;
    uint64_t serviceCycles = 0;
    uint64_t deadlineKills = 0;
};

/** Final, per-job result — the runtime's analogue of a PuOutcome. */
struct JobReport
{
    uint64_t jobId = 0;
    /** Ok; StreamTruncated (completed over an injected short stream);
     * a containment code (Parity, OutputOverflow); or the channel
     * status for a job stranded by a halted channel. */
    Status status;
    int pu = -1;      ///< Global slot the job ran on (-1: never armed).
    int channel = -1; ///< Global channel owning that slot.
    int device = -1;  ///< Cluster device owning that slot (ISSUE 10).
    /** Multi-tenant classification carried from submit (ISSUE 8);
     * part of operator== — the tagged schedule is fenced too. */
    uint32_t tenant = 0;
    uint32_t programIndex = 0;
    uint64_t armCycle = 0;
    uint64_t retireCycle = 0;
    uint64_t streamBits = 0;  ///< Input bits actually armed.
    uint64_t emittedBits = 0; ///< Bits the unit emitted.
    uint64_t outputBits = 0;  ///< Bits flushed to channel memory.
    /** This job's slice of the slot's stall counters. */
    uint64_t inputStarvedCycles = 0;
    uint64_t outputBlockedCycles = 0;
    /** Tokens kept / original when fault truncation applied (equal
     * when the stream ran whole). */
    uint64_t keptTokens = 0;
    uint64_t originalTokens = 0;
    /**
     * @name Recovery accounting (ISSUE 7)
     * Both are part of operator==: the retry/requeue schedule is as
     * deterministic as the rest of the simulated state.
     */
    /// @{
    /** Service-level attempts this report closes (1 = first try; set
     * by serve::FleetService when its RetryPolicy re-submitted the
     * job; the Session itself always reports 1). */
    uint32_t attempts = 1;
    /** Times the job was pulled off a halted channel and re-queued
     * onto survivors (SessionConfig::requeueStranded). */
    uint32_t requeues = 0;
    /// @}
    /**
     * @name Latency decomposition (ISSUE 6)
     * Simulated timestamps on the *session clock* (max over shard
     * cycles, sampled at scheduler round boundaries), so they share one
     * monotonic timebase even though armCycle/retireCycle are on the
     * owning shard's clock (which can lag when that shard idles).
     * Deterministic: bit-identical across PU backends and host thread
     * counts, and part of operator==.
     */
    /// @{
    uint64_t enqueueCycle = 0;   ///< Entered the queue (or arrival).
    uint64_t admittedCycle = 0;  ///< Round the job was armed on a slot.
    uint64_t completedCycle = 0; ///< Round the report became final.

    /** Cycles spent queued before a slot armed the job. */
    uint64_t queueWaitCycles() const
    {
        return admittedCycle > enqueueCycle
                   ? admittedCycle - enqueueCycle
                   : 0;
    }
    /** Arm-to-retire service time on the owning shard's clock. */
    uint64_t serviceCycles() const
    {
        return retireCycle > armCycle ? retireCycle - armCycle : 0;
    }
    /** End-to-end simulated latency: queue wait + service + the round
     * quantization of harvest. */
    uint64_t totalCycles() const
    {
        return completedCycle > enqueueCycle
                   ? completedCycle - enqueueCycle
                   : 0;
    }
    /// @}

    /**
     * Host wall-clock stamps (steady clock, nanoseconds): submission
     * and report-finalization time. Purely observational host-side
     * metrics — they vary run to run and are deliberately *excluded*
     * from operator==, which fences only the simulated schedule.
     */
    uint64_t hostSubmitNs = 0;
    uint64_t hostDoneNs = 0;
    double hostLatencySeconds() const
    {
        return hostDoneNs > hostSubmitNs
                   ? (hostDoneNs - hostSubmitNs) * 1e-9
                   : 0.0;
    }

    /** The job's flushed output (partial for contained/stranded jobs —
     * empty when the channel halted before the slot drained). */
    BitBuffer output;

    /** Completed — possibly on a truncated stream. */
    bool ok() const
    {
        return status.code == StatusCode::Ok ||
               status.code == StatusCode::StreamTruncated;
    }
};

bool operator==(const JobReport &a, const JobReport &b);
inline bool
operator!=(const JobReport &a, const JobReport &b)
{
    return !(a == b);
}

class Session
{
  public:
    Session(const lang::Program &program, const SessionConfig &config);

    /**
     * Multi-program session (ISSUE 8): host every program in the list
     * at once, slots bound per `bindings` (empty = all slots run
     * programs[0] on lane 0). The program mix is validated against the
     * device area model at construction — see
     * system::FleetSystem::checkProgramMix.
     */
    Session(std::vector<lang::Program> programs,
            const SessionConfig &config,
            std::vector<system::SlotBinding> bindings = {});

    /**
     * Enqueue a job; returns its id (sequential from 0). The stream
     * must be a whole number of input tokens and fit the configured
     * input region — violations surface in the job's report
     * (InvalidArgument), not as exceptions, so one bad job cannot take
     * down the queue behind it. Submitting after finish() throws
     * StatusError(InvalidState).
     */
    uint64_t submit(BitBuffer stream, JobCallback callback = nullptr);

    /**
     * submit() with an explicit enqueue timestamp on the session clock
     * (ISSUE 6): the serving layer passes each job's open-loop arrival
     * cycle so JobReport::queueWaitCycles measures queueing delay from
     * *arrival*, not from whenever the scheduler got around to the
     * transfer. `enqueue_cycle` must not exceed the current session
     * cycle by construction of the caller's pacing; it is used verbatim.
     */
    uint64_t submitAt(BitBuffer stream, uint64_t enqueue_cycle,
                      JobCallback callback = nullptr,
                      uint64_t deadline_cycle = 0);

    /**
     * submitAt() with a multi-tenant JobTag (ISSUE 8): tenant id for
     * fair queuing and per-tenant accounting, program class (which
     * bound program the job targets — a job only arms on slots bound
     * to that program), strict priority, and placement hint. A tag
     * naming an unknown program index is reported InvalidArgument; a
     * tag whose program has no live slots left (all halted or
     * quarantined while other slots keep serving) is reported
     * InvalidState.
     */
    uint64_t submitJob(BitBuffer stream, const JobTag &tag,
                       uint64_t enqueue_cycle,
                       JobCallback callback = nullptr,
                       uint64_t deadline_cycle = 0);

    /**
     * One scheduler round: harvest drained jobs, arm queued jobs onto
     * parked slots, advance every shard one epoch. Returns true while
     * jobs remain queued or in flight — `while (session.step());` is
     * the serving loop, with submit() legal between rounds.
     */
    bool step();

    /** Run rounds until every submitted job has a report. */
    void drain();

    /**
     * Drain, then settle the underlying cluster: every shard's
     * ChannelOutcome and the session trace are assembled into the
     * returned RunReport (which the determinism fences compare across
     * thread counts). Call once, last. Returns *device 0's* report —
     * on a 1-device session this is the whole result and is bit-exact
     * with the pre-cluster runtime; multi-device callers read
     * finishCluster()/clusterReport() for every device plus the link
     * fabric.
     */
    const system::RunReport &finish();

    /** finish(), returning the whole ClusterReport (ISSUE 10). */
    const cluster::ClusterReport &finishCluster();

    /** The settled ClusterReport; throws StatusError(InvalidState)
     * before finish()/finishCluster(). */
    const cluster::ClusterReport &clusterReport() const;

    /** A finished job's report. Throws StatusError(InvalidState) while
     * the job is still queued or in flight. */
    const JobReport &report(uint64_t job_id) const;

    /** True once `job_id` has a final report. */
    bool done(uint64_t job_id) const;

    /** Reports of all finished jobs, indexed by job id (ids with no
     * final report yet are default-constructed placeholders). */
    const std::vector<JobReport> &reports() const { return reports_; }

    /// @name Recovery telemetry (ISSUE 7).
    /// @{
    /** Jobs cancelled for exceeding their deadline (in-queue + armed). */
    uint64_t deadlineKills() const { return deadlineKills_; }
    /** Jobs pulled off halted channels and re-queued onto survivors. */
    uint64_t jobRequeues() const { return jobRequeues_; }
    /** Slots quarantined by repeated per-PU containment events. */
    int quarantinedSlots() const { return quarantinedSlots_; }
    /// @}

    uint64_t jobsSubmitted() const { return queue_.pushed(); }
    uint64_t jobsFinished() const { return jobsFinished_; }
    /** Queued + armed jobs without a final report. */
    uint64_t jobsPending() const
    {
        return queue_.pushed() - jobsFinished_;
    }
    /** Jobs currently armed on a slot (busy slots). */
    int jobsInFlight() const;
    /** Slots that can still serve (their channel has not halted). */
    int liveSlots() const;
    /** Jobs waiting in the session's FIFO (pending minus in flight). */
    uint64_t jobsQueued() const { return queue_.size(); }
    /** Simulated cycle count (max over channels so far). */
    uint64_t cycles() const;

    /** Device 0's simulator — the legacy single-device accessor; every
     * pre-cluster caller (tests, benches) still reads through it. */
    system::FleetSystem &system() { return cluster_.deviceSystem(0); }
    const system::FleetSystem &system() const
    {
        return cluster_.deviceSystem(0);
    }

    /// @name Cluster observability (ISSUE 10).
    /// @{
    cluster::Cluster &cluster() { return cluster_; }
    const cluster::Cluster &cluster() const { return cluster_; }
    int numDevices() const { return cluster_.numDevices(); }
    /** One device's containment/throughput counters. */
    system::SystemStats deviceStats(int device) const
    {
        return cluster_.device(device).stats();
    }
    /** Halt a *global* channel mid-session (fault-drill hook; the
     * serving layer's injectChannelHalt routes through this). */
    void forceHaltChannel(int global_channel, Status status)
    {
        cluster_.forceHaltChannel(global_channel, std::move(status));
    }
    /// @}

    /// @name Scheduler observability (ISSUE 8, the property harness).
    /// @{

    /** The session's wait queue, read-only (arrival order). */
    const JobQueue &queue() const { return queue_; }

    /** The active scheduling policy. */
    const Scheduler &scheduler() const { return *scheduler_; }

    /** Point-in-time view of one slot, for work-conservation checks. */
    struct SlotStateView
    {
        bool busy = false;
        bool dead = false;
        bool quarantined = false;
        uint32_t programIndex = 0;
        int lane = 0;
        int device = 0; ///< Cluster device hosting the slot.
        uint64_t jobId = 0; ///< Valid while busy.
    };
    SlotStateView slotState(int pu) const;

    /** Per-tenant queue-wait/service breakdown, keyed by tenant id
     * (tenants appear when their first report finalizes). */
    const std::map<uint32_t, TenantSessionStats> &tenantStats() const
    {
        return tenants_;
    }

    /// @}

  private:
    /** Slot bookkeeping: which job a slot holds, if any. */
    struct Slot
    {
        bool busy = false;
        bool dead = false; ///< Channel halted; never re-armed.
        /** Health registry pulled the slot from the pool (ISSUE 7). */
        bool quarantined = false;
        /** Per-PU containment events (parity, overflow) on this slot. */
        int faultCount = 0;
        uint64_t jobId = 0;
        JobCallback callback;
        /** Latency anchors carried from the pending job to harvest. */
        uint64_t enqueueCycle = 0;
        uint64_t admittedCycle = 0;
        uint64_t hostSubmitNs = 0;
        /** Absolute expiry cycle (0 = none) for mid-flight kills. */
        uint64_t deadlineCycle = 0;
        uint64_t requeues = 0;
        /** Multi-tenant tag carried from the pending job (ISSUE 8). */
        JobTag tag;
        /** Pre-truncation stream copy, kept only under
         * requeueStranded so a halted channel's jobs can re-run. */
        BitBuffer stream;
    };

    void harvest();
    /** Cancel jobs past their deadline: in-queue and mid-flight. */
    void expireDeadlines();
    /** Health scoring at retire time; may quarantine the slot. */
    void scoreSlotHealth(int pu, const Status &status);
    void armFromQueue();
    /** One scheduler-driven arm pass over the parked live slots. */
    void armSweep(bool relax_hints);
    /** Strand queued jobs that can never arm (unknown program, or a
     * program with zero live slots while others keep serving). */
    void strandOrphans();
    /** Sample the scheduler tracks for this round (events mode only). */
    void sampleSessionTracks();
    /** Report a job that never produced a RetiredJob (arm rejection or
     * a halted channel) and fire its callback. */
    void finishJobEarly(uint64_t job_id, int pu, Status status,
                        JobCallback &callback, uint64_t enqueue_cycle,
                        uint64_t host_submit_ns, uint32_t requeues,
                        const JobTag &tag);
    void record(JobReport report, JobCallback &callback);

    SessionConfig config_;
    /** The device pool (ISSUE 10): numDevices identical FleetSystems
     * under global slot indices. Every former direct FleetSystem call
     * forwards through the cluster's device-major index translation —
     * with one device, a zero-cost rename. */
    cluster::Cluster cluster_;
    /** The pluggable policy (runtime/scheduler.h); never null. */
    std::unique_ptr<Scheduler> scheduler_;
    JobQueue queue_;
    std::vector<Slot> slots_; ///< Indexed by global PU index.
    std::vector<JobReport> reports_; ///< Indexed by job id.
    std::vector<bool> reported_;     ///< Indexed by job id.
    uint64_t jobsFinished_ = 0;
    bool finished_ = false;
    /** Set by finish(): the cluster's settled report (owned by
     * cluster_; stable for the session's remaining lifetime). */
    const cluster::ClusterReport *clusterReport_ = nullptr;
    /** Scheduler observability (trace events mode): queue depth, jobs
     * in flight, and cumulative queue-wait cycles, sampled per round
     * on the session clock (consecutive equal samples deduplicated). */
    trace::CounterTrack queueDepthTrack_;
    trace::CounterTrack inFlightTrack_;
    trace::CounterTrack queueWaitTrack_;
    /** Recovery counters, sampled as tracks too (ISSUE 7). */
    trace::CounterTrack deadlineKillTrack_;
    trace::CounterTrack requeueTrack_;
    trace::CounterTrack quarantineTrack_;
    uint64_t totalQueueWaitCycles_ = 0;
    uint64_t deadlineKills_ = 0;
    uint64_t jobRequeues_ = 0;
    int quarantinedSlots_ = 0;
    /** Per-tenant accounting, updated as reports finalize; std::map so
     * iteration (and thus the trace assembly) is tenant-ordered and
     * deterministic. */
    std::map<uint32_t, TenantSessionStats> tenants_;
    /** Per-tenant counter tracks (events mode): cumulative queue-wait
     * and service cycles, sampled per round like the global tracks. */
    std::map<uint32_t, std::pair<trace::CounterTrack,
                                 trace::CounterTrack>>
        tenantTracks_;
};

} // namespace runtime
} // namespace fleet

#endif // FLEET_RUNTIME_SESSION_H
