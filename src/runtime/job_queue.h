#ifndef FLEET_RUNTIME_JOB_QUEUE_H
#define FLEET_RUNTIME_JOB_QUEUE_H

/**
 * @file
 * FIFO of pending jobs for the multi-stream runtime (ISSUE 5). A job is
 * one independent input stream plus an optional completion callback; the
 * queue assigns sequential ids at push time, so Session::report(id)
 * indexes its report table directly and the fault plan's per-job stream
 * truncation (fault::truncatedJobTokens) is keyed stably no matter which
 * processing-unit slot the job eventually lands on.
 *
 * The queue itself is deliberately dumb — it stores jobs in strict
 * arrival order and never reorders — because the scheduler's determinism
 * argument (DESIGN.md §5e/§5h) rests on the dispatch order being a pure
 * function of simulated state. Policy lives in runtime::Scheduler, which
 * *picks an index* out of this queue (take()); the queue just preserves
 * arrival order and stable ids.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/scheduler.h"
#include "util/bitbuf.h"
#include "util/logging.h"

namespace fleet {
namespace runtime {

struct JobReport;

/** Invoked by Session when the job's report is final. */
using JobCallback = std::function<void(const JobReport &)>;

/** One pending job: a stream awaiting a processing-unit slot. */
struct PendingJob
{
    uint64_t id = 0;
    BitBuffer stream;
    JobCallback callback; ///< May be empty.
    /**
     * Session-clock cycle the job entered the queue (ISSUE 6): the
     * anchor for the report's queue-wait decomposition. Stamped by
     * Session::submit with the current session cycle, or provided by
     * the serving layer as the job's open-loop arrival cycle.
     */
    uint64_t enqueueCycle = 0;
    /** Host steady-clock nanoseconds at submission (wall-clock metrics
     * only — never feeds back into the simulated schedule). */
    uint64_t hostSubmitNs = 0;
    /**
     * Absolute session-clock cycle after which the job is expired
     * (ISSUE 7); 0 = no deadline. Session::step cancels expired jobs
     * in-queue (JobQueue::takeExpired) or mid-flight (killPu/retire)
     * and reports them DeadlineExceeded.
     */
    uint64_t deadlineCycle = 0;
    /** Times the job was pulled off a halted channel and re-queued
     * onto survivors (ISSUE 7); surfaced in JobReport::requeues. */
    uint32_t requeues = 0;
    /** Tenant / program-class / placement tag (ISSUE 8). Defaults are
     * the single-tenant legacy behaviour. */
    JobTag tag;
};

class JobQueue
{
  public:
    /** Enqueue a stream; returns the job's id (sequential from 0). */
    uint64_t push(BitBuffer stream, JobCallback callback = nullptr,
                  uint64_t enqueue_cycle = 0, uint64_t host_submit_ns = 0,
                  uint64_t deadline_cycle = 0, const JobTag &tag = {})
    {
        uint64_t id = nextId_++;
        jobs_.push_back(PendingJob{id, std::move(stream),
                                   std::move(callback), enqueue_cycle,
                                   host_submit_ns, deadline_cycle, 0,
                                   tag});
        return id;
    }

    /**
     * Put a job back at the *front* of the queue without assigning a
     * new id (ISSUE 7): the halted-channel recovery path re-queues a
     * stranded job under its original id so its report slot, fault
     * hashes, and latency anchors stay keyed to the same job. The id
     * must have been assigned by this queue's push().
     */
    void requeueFront(PendingJob job)
    {
        if (job.id >= nextId_)
            panic("JobQueue::requeueFront with a foreign job id ",
                  job.id);
        jobs_.push_front(std::move(job));
    }

    /**
     * Remove and return every queued job whose deadline has passed at
     * session cycle `now` (deadlineCycle != 0 and <= now), preserving
     * FIFO order among the expired. Pure function of queue contents
     * and `now` — called once per scheduler round, so expiry is as
     * deterministic as the rest of the schedule.
     */
    std::vector<PendingJob> takeExpired(uint64_t now)
    {
        std::vector<PendingJob> expired;
        std::deque<PendingJob> kept;
        for (auto &job : jobs_) {
            if (job.deadlineCycle != 0 && job.deadlineCycle <= now)
                expired.push_back(std::move(job));
            else
                kept.push_back(std::move(job));
        }
        jobs_.swap(kept);
        return expired;
    }

    bool empty() const { return jobs_.empty(); }
    size_t size() const { return jobs_.size(); }
    /** Total jobs ever pushed (== the next id to be assigned). */
    uint64_t pushed() const { return nextId_; }

    const PendingJob &front() const
    {
        if (jobs_.empty())
            panic("JobQueue::front on an empty queue");
        return jobs_.front();
    }

    /** Read-only view of the job at queue position `index` (arrival
     * order) — what Scheduler::pick sees. */
    const PendingJob &at(size_t index) const
    {
        if (index >= jobs_.size())
            panic("JobQueue::at(", index, ") on a queue of ",
                  jobs_.size());
        return jobs_[index];
    }

    PendingJob pop()
    {
        if (jobs_.empty())
            panic("JobQueue::pop on an empty queue");
        PendingJob job = std::move(jobs_.front());
        jobs_.pop_front();
        return job;
    }

    /** Remove and return the job at queue position `index`: how the
     * Session honours a scheduler pick. take(0) == pop(). */
    PendingJob take(size_t index)
    {
        if (index >= jobs_.size())
            panic("JobQueue::take(", index, ") on a queue of ",
                  jobs_.size());
        PendingJob job = std::move(jobs_[index]);
        jobs_.erase(jobs_.begin() + static_cast<ptrdiff_t>(index));
        return job;
    }

  private:
    std::deque<PendingJob> jobs_;
    uint64_t nextId_ = 0;
};

} // namespace runtime
} // namespace fleet

#endif // FLEET_RUNTIME_JOB_QUEUE_H
