#ifndef FLEET_RUNTIME_SCHEDULER_H
#define FLEET_RUNTIME_SCHEDULER_H

/**
 * @file
 * Pluggable job scheduling for the multi-tenant Session (ISSUE 8).
 *
 * The Session's arm loop asks a Scheduler which queued job a freed slot
 * should run next. Every policy here is a *pure function of simulated
 * state*: picks depend only on the queue contents, the slot's static
 * binding (program index + placement lane), and the scheduler's own
 * history of armed jobs — never on host time, host thread count, or PU
 * backend. That purity is what lets the existing bit-identity fences
 * (serial-vs-parallel, cross-backend, trace equality) survive with any
 * policy enabled (DESIGN.md §5h).
 *
 * Policies:
 *  - Fifo:     legacy arrival order; the default, cycle-exact with the
 *              pre-scheduler runtime.
 *  - Priority: strict priority classes (lower JobTag::priority value
 *              wins), FIFO within a class.
 *  - Sjf:      shortest job first by stream bytes, FIFO among equals.
 *  - Wfq:      weighted fair queuing across tenants, implemented as
 *              integer start-time fair queuing: each tenant carries a
 *              finish tag advanced by streamBits * kWfqCostScale /
 *              weight per armed job, and the earliest start tag
 *              (max(tenant finish tag, virtual time)) wins.
 *
 * Placement hints: JobTag::preferredLane steers a job toward slots with
 * a matching SlotBinding::lane (e.g. latency-critical work onto lanes
 * bound to the Fast backend, audit jobs onto RtlTape lanes). Hints are
 * preferences, not partitions — the Session's second arm sweep relaxes
 * them so no live slot idles while compatible work is queued.
 */

#include <cstdint>
#include <memory>
#include <vector>

namespace fleet {
namespace runtime {

/** Which scheduling policy a Session runs. */
enum class SchedulerPolicy
{
    Fifo,
    Priority,
    Sjf,
    Wfq,
};

const char *schedulerPolicyName(SchedulerPolicy policy);

/** Multi-tenant classification carried by every job. Defaults reproduce
 * the single-tenant, single-program, unhinted legacy behaviour. */
struct JobTag
{
    /** Tenant id for fair-queuing and per-tenant accounting. */
    uint32_t tenant = 0;
    /** Which bound program this job targets (index into the Session's
     * program list); jobs only arm on slots bound to the same index. */
    uint32_t programIndex = 0;
    /** Strict priority class, lower wins (Priority policy only). */
    uint32_t priority = 0;
    /** Placement hint: preferred SlotBinding::lane, or -1 for any. */
    int preferredLane = -1;
    /** Placement hint (ISSUE 10): preferred cluster device, or -1 for
     * any. Like preferredLane, a preference, not a partition — the
     * relaxed arm sweep ignores it so no live slot idles. */
    int preferredDevice = -1;
};

bool operator==(const JobTag &a, const JobTag &b);

/** Immutable view of the slot asking for work. */
struct SlotView
{
    int pu = -1;
    uint32_t programIndex = 0;
    int lane = 0;
    /** Cluster device hosting the slot (ISSUE 10); 0 on one device. */
    int device = 0;
};

/** Immutable view of one queued job, in queue (arrival) order. */
struct QueuedJobView
{
    uint64_t id = 0;
    uint64_t enqueueCycle = 0;
    uint64_t streamBits = 0;
    JobTag tag;
};

/** Per-tenant WFQ weight; tenants without an entry default to weight
 * 1. Weight 0 is clamped to 1 (a zero-weight tenant would starve and
 * break the no-starvation property). */
struct TenantWeight
{
    uint32_t tenant = 0;
    uint32_t weight = 1;
};

struct SchedulerConfig
{
    SchedulerPolicy policy = SchedulerPolicy::Fifo;
    /** WFQ weights; ignored by the other policies. */
    std::vector<TenantWeight> weights;
};

/** Scale factor for WFQ cost arithmetic: cost = max(1, streamBits) *
 * kWfqCostScale / weight, all in integers so schedules are bit-exact
 * on every host. */
constexpr uint64_t kWfqCostScale = 1024;

/**
 * Picks which queued job a freed slot runs next. pick() filters the
 * queue down to candidates the slot can legally run (program match,
 * plus the placement-hint rule unless relax_hints), then delegates the
 * policy decision to choose(). Implementations must be deterministic:
 * same arguments and same onArm() history => same pick.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual const char *name() const = 0;

    /**
     * Returns the queue index of the job the slot should arm, or -1 if
     * no queued job is compatible. With relax_hints false, jobs whose
     * preferredLane is set and differs from slot.lane are excluded;
     * with relax_hints true only the program binding filters.
     */
    int pick(const SlotView &slot, const std::vector<QueuedJobView> &queued,
             uint64_t now, bool relax_hints);

    /** Informs the scheduler a pick was actually armed (WFQ advances
     * its virtual clock here). Called once per successful arm. */
    virtual void onArm(const QueuedJobView &job, uint64_t now);

  protected:
    /** Policy decision among pre-filtered candidates (queue indices in
     * ascending order, never empty). Returns one of the candidates. */
    virtual int choose(const SlotView &slot,
                       const std::vector<QueuedJobView> &queued,
                       const std::vector<int> &candidates,
                       uint64_t now) = 0;
};

/** Builds the scheduler for a config; never returns null. */
std::unique_ptr<Scheduler> makeScheduler(const SchedulerConfig &config);

} // namespace runtime
} // namespace fleet

#endif // FLEET_RUNTIME_SCHEDULER_H
