#include "runtime/scheduler.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace fleet {
namespace runtime {

const char *
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Fifo:
        return "fifo";
      case SchedulerPolicy::Priority:
        return "priority";
      case SchedulerPolicy::Sjf:
        return "sjf";
      case SchedulerPolicy::Wfq:
        return "wfq";
    }
    return "unknown";
}

bool
operator==(const JobTag &a, const JobTag &b)
{
    return a.tenant == b.tenant && a.programIndex == b.programIndex &&
           a.priority == b.priority &&
           a.preferredLane == b.preferredLane &&
           a.preferredDevice == b.preferredDevice;
}

int
Scheduler::pick(const SlotView &slot,
                const std::vector<QueuedJobView> &queued, uint64_t now,
                bool relax_hints)
{
    std::vector<int> candidates;
    candidates.reserve(queued.size());
    for (size_t i = 0; i < queued.size(); ++i) {
        const QueuedJobView &job = queued[i];
        if (job.tag.programIndex != slot.programIndex)
            continue;
        if (!relax_hints && job.tag.preferredLane >= 0 &&
            job.tag.preferredLane != slot.lane) {
            continue;
        }
        if (!relax_hints && job.tag.preferredDevice >= 0 &&
            job.tag.preferredDevice != slot.device) {
            continue;
        }
        candidates.push_back(static_cast<int>(i));
    }
    if (candidates.empty())
        return -1;
    int picked = choose(slot, queued, candidates, now);
    if (std::find(candidates.begin(), candidates.end(), picked) ==
        candidates.end()) {
        panic("scheduler ", name(), " picked index ", picked,
              " outside its candidate set");
    }
    return picked;
}

void
Scheduler::onArm(const QueuedJobView &job, uint64_t now)
{
    (void)job;
    (void)now;
}

namespace {

/** Legacy arrival order: always the first compatible job. */
class FifoScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "fifo"; }

  protected:
    int choose(const SlotView &, const std::vector<QueuedJobView> &,
               const std::vector<int> &candidates, uint64_t) override
    {
        return candidates.front();
    }
};

/** Strict priority classes, FIFO within a class (lower value wins). */
class PriorityScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "priority"; }

  protected:
    int choose(const SlotView &, const std::vector<QueuedJobView> &queued,
               const std::vector<int> &candidates, uint64_t) override
    {
        int best = candidates.front();
        for (int i : candidates) {
            if (queued[i].tag.priority < queued[best].tag.priority)
                best = i;
        }
        return best;
    }
};

/** Shortest job first by stream size, FIFO among equals. */
class SjfScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "sjf"; }

  protected:
    int choose(const SlotView &, const std::vector<QueuedJobView> &queued,
               const std::vector<int> &candidates, uint64_t) override
    {
        int best = candidates.front();
        for (int i : candidates) {
            if (queued[i].streamBits < queued[best].streamBits)
                best = i;
        }
        return best;
    }
};

/**
 * Weighted fair queuing as integer start-time fair queuing (SFQ).
 * Virtual time v is the start tag of the last armed job; a tenant's
 * next job starts at max(finishTag[tenant], v) and finishes cost =
 * max(1, streamBits) * kWfqCostScale / weight later. The candidate
 * with the smallest start tag wins; ties break toward queue (arrival)
 * order, so equal-weight tenants interleave deterministically and a
 * single tenant degenerates to FIFO. State advances only in onArm(),
 * i.e. only as a function of the armed sequence, keeping the schedule
 * a pure function of simulated state.
 */
class WfqScheduler final : public Scheduler
{
  public:
    explicit WfqScheduler(const SchedulerConfig &config)
    {
        for (const TenantWeight &w : config.weights)
            weights_[w.tenant] = std::max<uint32_t>(1, w.weight);
    }

    const char *name() const override { return "wfq"; }

    void onArm(const QueuedJobView &job, uint64_t now) override
    {
        (void)now;
        uint64_t start = startTag(job.tag.tenant);
        finish_[job.tag.tenant] = start + cost(job);
        virtualTime_ = start;
    }

  protected:
    int choose(const SlotView &, const std::vector<QueuedJobView> &queued,
               const std::vector<int> &candidates, uint64_t) override
    {
        // Fair queuing serves each tenant's own backlog FIFO, so only
        // the head-of-line candidate per tenant competes.
        int best = -1;
        uint64_t best_start = 0;
        std::map<uint32_t, bool> seen;
        for (int i : candidates) {
            uint32_t tenant = queued[i].tag.tenant;
            if (seen[tenant])
                continue;
            seen[tenant] = true;
            uint64_t start = startTag(tenant);
            if (best < 0 || start < best_start) {
                best = i;
                best_start = start;
            }
        }
        return best;
    }

  private:
    uint64_t weight(uint32_t tenant) const
    {
        auto it = weights_.find(tenant);
        return it == weights_.end() ? 1 : it->second;
    }

    uint64_t cost(const QueuedJobView &job) const
    {
        uint64_t bits = std::max<uint64_t>(1, job.streamBits);
        return std::max<uint64_t>(1,
                                  bits * kWfqCostScale /
                                      weight(job.tag.tenant));
    }

    uint64_t startTag(uint32_t tenant) const
    {
        auto it = finish_.find(tenant);
        uint64_t f = it == finish_.end() ? 0 : it->second;
        return std::max(f, virtualTime_);
    }

    std::map<uint32_t, uint64_t> weights_;
    std::map<uint32_t, uint64_t> finish_;
    uint64_t virtualTime_ = 0;
};

} // namespace

std::unique_ptr<Scheduler>
makeScheduler(const SchedulerConfig &config)
{
    switch (config.policy) {
      case SchedulerPolicy::Fifo:
        return std::make_unique<FifoScheduler>();
      case SchedulerPolicy::Priority:
        return std::make_unique<PriorityScheduler>();
      case SchedulerPolicy::Sjf:
        return std::make_unique<SjfScheduler>();
      case SchedulerPolicy::Wfq:
        return std::make_unique<WfqScheduler>(config);
    }
    return std::make_unique<FifoScheduler>();
}

} // namespace runtime
} // namespace fleet
