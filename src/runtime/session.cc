/**
 * @file
 * Session scheduler implementation. The three-phase round (harvest →
 * arm → advance) and its fixed iteration order are the entire
 * determinism argument — see the header and DESIGN.md §5e/§5h. Nothing
 * here reads host time, thread ids, or any other nondeterministic
 * input; the pluggable policies (runtime/scheduler.h) are pure
 * functions of simulated state, and the underlying
 * FleetSystem::stepEpoch is itself bit-identical at every worker count.
 */

#include "runtime/session.h"

#include <chrono>
#include <sstream>
#include <utility>

namespace fleet {
namespace runtime {

namespace {

/** Host steady-clock stamp in nanoseconds (wall metrics only). */
uint64_t
hostNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Append a (cycle, value) sample, deduplicating repeats of the last
 * value so idle rounds don't grow the track. */
void
sampleTrack(trace::CounterTrack &track, uint64_t cycle, uint64_t value)
{
    if (!track.samples.empty() && track.samples.back().second == value)
        return;
    track.samples.emplace_back(cycle, value);
}

} // namespace

bool
operator==(const JobReport &a, const JobReport &b)
{
    // hostSubmitNs / hostDoneNs are deliberately omitted: wall-clock
    // stamps vary run to run, while everything simulated must not.
    return a.jobId == b.jobId && a.status == b.status && a.pu == b.pu &&
           a.channel == b.channel && a.device == b.device &&
           a.tenant == b.tenant &&
           a.programIndex == b.programIndex &&
           a.armCycle == b.armCycle &&
           a.retireCycle == b.retireCycle &&
           a.streamBits == b.streamBits &&
           a.emittedBits == b.emittedBits &&
           a.outputBits == b.outputBits &&
           a.inputStarvedCycles == b.inputStarvedCycles &&
           a.outputBlockedCycles == b.outputBlockedCycles &&
           a.keptTokens == b.keptTokens &&
           a.originalTokens == b.originalTokens &&
           a.attempts == b.attempts && a.requeues == b.requeues &&
           a.enqueueCycle == b.enqueueCycle &&
           a.admittedCycle == b.admittedCycle &&
           a.completedCycle == b.completedCycle && a.output == b.output;
}

Session::Session(const lang::Program &program,
                 const SessionConfig &config)
    : Session(std::vector<lang::Program>(1, program), config)
{
}

Session::Session(std::vector<lang::Program> programs,
                 const SessionConfig &config,
                 std::vector<system::SlotBinding> bindings)
    : config_(config),
      cluster_(std::move(programs), config.system, config.numSlots,
               std::move(bindings), config.numDevices, config.link),
      slots_(cluster_.numSlots())
{
    if (config_.epochCycles == 0)
        panic("SessionConfig::epochCycles must be nonzero");
    scheduler_ = config_.schedulerFactory
                     ? config_.schedulerFactory()
                     : makeScheduler(config_.scheduler);
    if (!scheduler_)
        panic("SessionConfig::schedulerFactory returned null");
    queueDepthTrack_.name = "session/queue_depth";
    inFlightTrack_.name = "session/jobs_in_flight";
    queueWaitTrack_.name = "session/queue_wait_cycles";
    deadlineKillTrack_.name = "session/deadline_kills";
    requeueTrack_.name = "session/requeues";
    quarantineTrack_.name = "session/quarantined_slots";
    cluster_.beginSession();
}

uint64_t
Session::submit(BitBuffer stream, JobCallback callback)
{
    return submitAt(std::move(stream), cycles(), std::move(callback));
}

uint64_t
Session::submitAt(BitBuffer stream, uint64_t enqueue_cycle,
                  JobCallback callback, uint64_t deadline_cycle)
{
    return submitJob(std::move(stream), JobTag{}, enqueue_cycle,
                     std::move(callback), deadline_cycle);
}

uint64_t
Session::submitJob(BitBuffer stream, const JobTag &tag,
                   uint64_t enqueue_cycle, JobCallback callback,
                   uint64_t deadline_cycle)
{
    if (finished_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "submit: session already finished"));
    uint64_t id = queue_.push(std::move(stream), std::move(callback),
                              enqueue_cycle, hostNowNs(),
                              deadline_cycle, tag);
    reports_.emplace_back();
    reported_.push_back(false);
    return id;
}

Session::SlotStateView
Session::slotState(int pu) const
{
    const Slot &slot = slots_[pu];
    SlotStateView view;
    view.busy = slot.busy;
    view.dead = slot.dead || cluster_.slotShardState(pu) ==
                                 system::ShardState::Halted;
    view.quarantined = slot.quarantined;
    view.programIndex = cluster_.slotProgramIndex(pu);
    view.lane = cluster_.slotLane(pu);
    view.device = cluster_.slotDevice(pu);
    view.jobId = slot.jobId;
    return view;
}

void
Session::record(JobReport report, JobCallback &callback)
{
    report.completedCycle = cycles();
    report.hostDoneNs = hostNowNs();
    uint64_t id = report.jobId;
    reports_[id] = std::move(report);
    reported_[id] = true;
    ++jobsFinished_;
    const JobReport &final = reports_[id];
    TenantSessionStats &tenant = tenants_[final.tenant];
    ++tenant.completed;
    tenant.queueWaitCycles += final.queueWaitCycles();
    tenant.serviceCycles += final.serviceCycles();
    if (final.status.code == StatusCode::DeadlineExceeded)
        ++tenant.deadlineKills;
    if (callback)
        callback(reports_[id]);
}

void
Session::finishJobEarly(uint64_t job_id, int pu, Status status,
                        JobCallback &callback, uint64_t enqueue_cycle,
                        uint64_t host_submit_ns, uint32_t requeues,
                        const JobTag &tag)
{
    JobReport report;
    report.jobId = job_id;
    report.status = std::move(status);
    report.pu = pu;
    report.channel = pu >= 0 ? cluster_.slotChannel(pu) : -1;
    report.device = pu >= 0 ? cluster_.slotDevice(pu) : -1;
    report.tenant = tag.tenant;
    report.programIndex = tag.programIndex;
    report.requeues = requeues;
    report.enqueueCycle = enqueue_cycle;
    // Never armed: the whole latency is queue wait, so the admission
    // stamp collapses onto the decision round.
    report.admittedCycle = cycles();
    report.hostSubmitNs = host_submit_ns;
    record(std::move(report), callback);
}

void
Session::harvest()
{
    // Jobs pulled off halted channels this round, in PU order; they
    // re-enter the FIFO *front* after the scan so the arm phase sees
    // them before anything newly queued.
    std::vector<PendingJob> requeued;
    for (int pu = 0; pu < cluster_.numSlots(); ++pu) {
        Slot &slot = slots_[pu];
        if (!slot.busy)
            continue;
        if (cluster_.puDrained(pu)) {
            // Read the output region before retiring: retireJob parks
            // the slot and the next arm reuses the region.
            BitBuffer output = cluster_.jobOutput(pu);
            system::RetiredJob retired = cluster_.retireJob(pu);
            JobReport report;
            report.jobId = retired.jobId;
            report.status = retired.outcome.status;
            report.pu = pu;
            report.channel = cluster_.slotChannel(pu);
            report.device = cluster_.slotDevice(pu);
            report.tenant = slot.tag.tenant;
            report.programIndex = slot.tag.programIndex;
            report.armCycle = retired.armCycle;
            report.retireCycle = retired.retireCycle;
            report.streamBits = retired.streamBits;
            report.emittedBits = retired.emittedBits;
            report.outputBits = retired.outcome.outputBits;
            report.inputStarvedCycles =
                retired.stats.inputStarvedCycles;
            report.outputBlockedCycles =
                retired.stats.outputBlockedCycles;
            report.keptTokens = retired.keptTokens;
            report.originalTokens = retired.originalTokens;
            report.requeues = static_cast<uint32_t>(slot.requeues);
            report.enqueueCycle = slot.enqueueCycle;
            report.admittedCycle = slot.admittedCycle;
            report.hostSubmitNs = slot.hostSubmitNs;
            report.output = std::move(output);
            slot.busy = false;
            slot.stream = BitBuffer{};
            scoreSlotHealth(pu, report.status);
            record(std::move(report), slot.callback);
            slot.callback = nullptr;
        } else if (cluster_.slotShardState(pu) ==
                   system::ShardState::Halted) {
            if (config_.requeueStranded) {
                // Recovery path (ISSUE 7): pull the job off the dead
                // channel and re-run it on a survivor, provided one
                // exists. The slot itself is still retired for good.
                bool survivor = false;
                for (int other = 0; other < cluster_.numSlots();
                     ++other)
                    survivor |= !slots_[other].dead &&
                                !slots_[other].quarantined &&
                                cluster_.slotShardState(other) !=
                                    system::ShardState::Halted;
                if (survivor) {
                    PendingJob job;
                    job.id = slot.jobId;
                    job.stream = std::move(slot.stream);
                    job.callback = std::move(slot.callback);
                    job.enqueueCycle = slot.enqueueCycle;
                    job.hostSubmitNs = slot.hostSubmitNs;
                    job.deadlineCycle = slot.deadlineCycle;
                    job.requeues =
                        static_cast<uint32_t>(slot.requeues + 1);
                    job.tag = slot.tag;
                    requeued.push_back(std::move(job));
                    ++jobRequeues_;
                    slot.busy = false;
                    slot.dead = true;
                    slot.callback = nullptr;
                    slot.stream = BitBuffer{};
                    continue;
                }
            }
            // The channel died under this job (watchdog, cycle limit,
            // exception): the slot will never drain. Report the job
            // with the channel's status and retire the slot for good —
            // its channel-mates' jobs are stranded the same way, but
            // every other channel keeps serving.
            std::ostringstream os;
            os << "job " << slot.jobId << " stranded on halted channel "
               << cluster_.slotChannel(pu) << ": "
               << cluster_.slotShardStatus(pu).toString();
            JobReport report;
            report.jobId = slot.jobId;
            report.status = Status::make(
                cluster_.slotShardStatus(pu).code, os.str());
            report.pu = pu;
            report.channel = cluster_.slotChannel(pu);
            report.device = cluster_.slotDevice(pu);
            report.tenant = slot.tag.tenant;
            report.programIndex = slot.tag.programIndex;
            report.retireCycle =
                cluster_.channelCycles(cluster_.slotChannel(pu));
            report.requeues = static_cast<uint32_t>(slot.requeues);
            report.enqueueCycle = slot.enqueueCycle;
            report.admittedCycle = slot.admittedCycle;
            report.hostSubmitNs = slot.hostSubmitNs;
            slot.busy = false;
            slot.dead = true;
            slot.stream = BitBuffer{};
            record(std::move(report), slot.callback);
            slot.callback = nullptr;
        }
    }
    // Reverse order: the lowest-PU job lands at the very front, so
    // re-queued jobs are re-armed in the same PU order they held on
    // the dead channel — keeping the schedule a pure function of
    // simulated state.
    for (auto it = requeued.rbegin(); it != requeued.rend(); ++it)
        queue_.requeueFront(std::move(*it));
}

void
Session::scoreSlotHealth(int pu, const Status &status)
{
    if (config_.quarantineAfterFaults <= 0)
        return;
    // Only per-PU containment events indict the slot itself: channel
    // halts take out the whole channel via the dead flag, and job
    // outcomes like truncation or a deadline kill say nothing about
    // the hardware under the job.
    if (status.code != StatusCode::ParityError &&
        status.code != StatusCode::OutputOverflow)
        return;
    Slot &slot = slots_[pu];
    if (slot.quarantined)
        return;
    if (++slot.faultCount >= config_.quarantineAfterFaults) {
        slot.quarantined = true;
        ++quarantinedSlots_;
    }
}

void
Session::expireDeadlines()
{
    const uint64_t now = cycles();
    // In-queue expiry: a job whose deadline passed while waiting never
    // arms — its whole latency was queue wait.
    for (PendingJob &job : queue_.takeExpired(now)) {
        std::ostringstream os;
        os << "job " << job.id << " exceeded its deadline (cycle "
           << job.deadlineCycle << ") while queued";
        ++deadlineKills_;
        finishJobEarly(job.id, -1,
                       Status::make(StatusCode::DeadlineExceeded,
                                    os.str()),
                       job.callback, job.enqueueCycle, job.hostSubmitNs,
                       job.requeues, job.tag);
    }
    // Mid-flight expiry: abandon the job through the containment path
    // (killPu + flush). The slot drains within a few cycles and the
    // next harvest retires it with DeadlineExceeded, reclaiming the
    // slot for the queue.
    for (int pu = 0; pu < cluster_.numSlots(); ++pu) {
        Slot &slot = slots_[pu];
        if (!slot.busy || slot.deadlineCycle == 0 ||
            now < slot.deadlineCycle)
            continue;
        if (cluster_.slotShardState(pu) == system::ShardState::Halted)
            continue; // Harvest's stranded/requeue path owns it.
        std::ostringstream os;
        os << "job " << slot.jobId << " exceeded its deadline (cycle "
           << slot.deadlineCycle << ") in flight; slot reclaimed";
        Status cancelled = cluster_.cancelJob(
            pu, Status::make(StatusCode::DeadlineExceeded, os.str()));
        if (cancelled.ok())
            ++deadlineKills_;
    }
}

void
Session::armFromQueue()
{
    // Two sweeps over the parked live slots (ISSUE 8): sweep one
    // honours JobTag::preferredLane placement hints; sweep two relaxes
    // them to program-match only, so a hint can steer a job but never
    // leave a compatible slot idle (work conservation). With the
    // default FIFO policy, a single program, and no hints, sweep one
    // arms everything and the pop order is cycle-exact with the
    // pre-scheduler runtime.
    armSweep(false);
    armSweep(true);
    strandOrphans();
}

void
Session::armSweep(bool relax_hints)
{
    const uint64_t now = cycles();
    for (int pu = 0; pu < cluster_.numSlots() && !queue_.empty();
         ++pu) {
        Slot &slot = slots_[pu];
        if (slot.busy || slot.dead || slot.quarantined)
            continue;
        if (cluster_.slotShardState(pu) == system::ShardState::Halted) {
            slot.dead = true;
            continue;
        }
        SlotView view;
        view.pu = pu;
        view.programIndex = cluster_.slotProgramIndex(pu);
        view.lane = cluster_.slotLane(pu);
        view.device = cluster_.slotDevice(pu);
        while (!queue_.empty()) {
            std::vector<QueuedJobView> queued(queue_.size());
            for (size_t i = 0; i < queue_.size(); ++i) {
                const PendingJob &pending = queue_.at(i);
                queued[i].id = pending.id;
                queued[i].enqueueCycle = pending.enqueueCycle;
                queued[i].streamBits = pending.stream.sizeBits();
                queued[i].tag = pending.tag;
            }
            int picked =
                scheduler_->pick(view, queued, now, relax_hints);
            if (picked < 0)
                break;
            QueuedJobView picked_view = queued[picked];
            PendingJob job = queue_.take(static_cast<size_t>(picked));
            // Kept pre-truncation so a halted channel's jobs can be
            // re-armed elsewhere (armJob consumes the original).
            BitBuffer stream_copy;
            if (config_.requeueStranded)
                stream_copy = job.stream;
            Status armed =
                cluster_.armJob(pu, std::move(job.stream), job.id);
            if (!armed.ok()) {
                // A malformed job (bad alignment, oversized stream)
                // fails alone; the slot re-picks among the rest.
                finishJobEarly(job.id, pu, std::move(armed),
                               job.callback, job.enqueueCycle,
                               job.hostSubmitNs, job.requeues, job.tag);
                continue;
            }
            scheduler_->onArm(picked_view, now);
            slot.busy = true;
            slot.jobId = job.id;
            slot.callback = std::move(job.callback);
            slot.enqueueCycle = job.enqueueCycle;
            slot.admittedCycle = now;
            slot.hostSubmitNs = job.hostSubmitNs;
            slot.deadlineCycle = job.deadlineCycle;
            slot.requeues = job.requeues;
            slot.tag = job.tag;
            slot.stream = std::move(stream_copy);
            totalQueueWaitCycles_ +=
                slot.admittedCycle > slot.enqueueCycle
                    ? slot.admittedCycle - slot.enqueueCycle
                    : 0;
            break;
        }
    }
}

void
Session::strandOrphans()
{
    if (queue_.empty())
        return;
    // After both sweeps, anything still queued either lost the
    // capacity race this round (fine — it waits) or can *never* arm:
    // its program index is unknown, or every slot bound to its program
    // is dead/quarantined while other programs' slots keep serving.
    // Report those now rather than letting them wait forever behind a
    // live pool. The all-slots-dead case is left to step(), which
    // strands the whole queue with its legacy message.
    std::vector<bool> live_per_program(
        static_cast<size_t>(cluster_.numPrograms()), false);
    bool any_live = false;
    for (int pu = 0; pu < cluster_.numSlots(); ++pu) {
        const Slot &slot = slots_[pu];
        if (slot.dead || slot.quarantined ||
            cluster_.slotShardState(pu) == system::ShardState::Halted)
            continue;
        live_per_program[cluster_.slotProgramIndex(pu)] = true;
        any_live = true;
    }
    if (!any_live)
        return;
    for (size_t i = 0; i < queue_.size();) {
        const PendingJob &pending = queue_.at(i);
        uint32_t program = pending.tag.programIndex;
        Status stranded;
        if (program >= live_per_program.size()) {
            std::ostringstream os;
            os << "job " << pending.id
               << " targets unknown program index " << program;
            stranded =
                Status::make(StatusCode::InvalidArgument, os.str());
        } else if (!live_per_program[program]) {
            std::ostringstream os;
            os << "job " << pending.id
               << " cannot run: no live slot is bound to program "
               << program;
            stranded = Status::make(StatusCode::InvalidState, os.str());
        } else {
            ++i;
            continue;
        }
        PendingJob job = queue_.take(i);
        finishJobEarly(job.id, -1, std::move(stranded), job.callback,
                       job.enqueueCycle, job.hostSubmitNs, job.requeues,
                       job.tag);
    }
}

bool
Session::step()
{
    if (finished_)
        throw StatusError(Status::make(
            StatusCode::InvalidState, "step: session already finished"));
    harvest();
    expireDeadlines();
    armFromQueue();
    sampleSessionTracks();
    bool in_flight = false;
    for (const Slot &slot : slots_)
        in_flight |= slot.busy;
    if (!in_flight) {
        if (queue_.empty())
            return false;
        // Jobs remain but every slot is dead or quarantined: report
        // them stranded rather than spinning.
        while (!queue_.empty()) {
            PendingJob job = queue_.pop();
            finishJobEarly(
                job.id, -1,
                Status::make(StatusCode::InvalidState,
                             "no live processing-unit slots remain "
                             "(every channel halted)"),
                job.callback, job.enqueueCycle, job.hostSubmitNs,
                job.requeues, job.tag);
        }
        return false;
    }
    cluster_.stepEpoch(config_.epochCycles);
    return true;
}

void
Session::sampleSessionTracks()
{
    if (!config_.system.trace.events)
        return;
    uint64_t now = cycles();
    sampleTrack(queueDepthTrack_, now, queue_.size());
    sampleTrack(inFlightTrack_, now,
                static_cast<uint64_t>(jobsInFlight()));
    sampleTrack(queueWaitTrack_, now, totalQueueWaitCycles_);
    sampleTrack(deadlineKillTrack_, now, deadlineKills_);
    sampleTrack(requeueTrack_, now, jobRequeues_);
    sampleTrack(quarantineTrack_, now,
                static_cast<uint64_t>(quarantinedSlots_));
    // Per-tenant breakdown (ISSUE 8): cumulative queue-wait and
    // service cycles per tenant id. Tracks appear when the tenant's
    // first report finalizes; std::map keeps the assembly order (and
    // thus the fenced trace) tenant-sorted and deterministic.
    for (const auto &entry : tenants_) {
        auto it = tenantTracks_.find(entry.first);
        if (it == tenantTracks_.end()) {
            it = tenantTracks_.emplace(entry.first,
                                       std::make_pair(
                                           trace::CounterTrack{},
                                           trace::CounterTrack{}))
                     .first;
            it->second.first.name = trace::tenantTrackName(
                entry.first, "queue_wait_cycles");
            it->second.second.name =
                trace::tenantTrackName(entry.first, "service_cycles");
        }
        sampleTrack(it->second.first, now,
                    entry.second.queueWaitCycles);
        sampleTrack(it->second.second, now,
                    entry.second.serviceCycles);
    }
}

int
Session::jobsInFlight() const
{
    int busy = 0;
    for (const Slot &slot : slots_)
        busy += slot.busy ? 1 : 0;
    return busy;
}

int
Session::liveSlots() const
{
    int live = 0;
    for (const Slot &slot : slots_)
        live += (slot.dead || slot.quarantined) ? 0 : 1;
    return live;
}

void
Session::drain()
{
    while (step()) {
    }
}

const system::RunReport &
Session::finish()
{
    return finishCluster().devices[0];
}

const cluster::ClusterReport &
Session::finishCluster()
{
    drain();
    finished_ = true;
    if (config_.system.trace.events) {
        std::vector<trace::CounterTrack> tracks = {
            queueDepthTrack_,    inFlightTrack_, queueWaitTrack_,
            deadlineKillTrack_,  requeueTrack_,  quarantineTrack_};
        for (const auto &entry : tenantTracks_) {
            tracks.push_back(entry.second.first);
            tracks.push_back(entry.second.second);
        }
        cluster_.setSessionTracks(std::move(tracks));
    }
    clusterReport_ = &cluster_.finishSession();
    return *clusterReport_;
}

const cluster::ClusterReport &
Session::clusterReport() const
{
    if (!clusterReport_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "clusterReport: session has not finished"));
    return *clusterReport_;
}

const JobReport &
Session::report(uint64_t job_id) const
{
    if (!done(job_id))
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "report: job has not finished (queued or in flight)"));
    return reports_[job_id];
}

bool
Session::done(uint64_t job_id) const
{
    return job_id < reported_.size() && reported_[job_id];
}

uint64_t
Session::cycles() const
{
    return cluster_.cycles();
}

} // namespace runtime
} // namespace fleet
