/**
 * @file
 * Session scheduler implementation. The three-phase round (harvest →
 * arm → advance) and its fixed iteration order are the entire
 * determinism argument — see the header and DESIGN.md §5e. Nothing
 * here reads host time, thread ids, or any other nondeterministic
 * input; the underlying FleetSystem::stepEpoch is itself bit-identical
 * at every worker count.
 */

#include "runtime/session.h"

#include <chrono>
#include <sstream>
#include <utility>

namespace fleet {
namespace runtime {

namespace {

/** Host steady-clock stamp in nanoseconds (wall metrics only). */
uint64_t
hostNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Append a (cycle, value) sample, deduplicating repeats of the last
 * value so idle rounds don't grow the track. */
void
sampleTrack(trace::CounterTrack &track, uint64_t cycle, uint64_t value)
{
    if (!track.samples.empty() && track.samples.back().second == value)
        return;
    track.samples.emplace_back(cycle, value);
}

} // namespace

bool
operator==(const JobReport &a, const JobReport &b)
{
    // hostSubmitNs / hostDoneNs are deliberately omitted: wall-clock
    // stamps vary run to run, while everything simulated must not.
    return a.jobId == b.jobId && a.status == b.status && a.pu == b.pu &&
           a.channel == b.channel && a.armCycle == b.armCycle &&
           a.retireCycle == b.retireCycle &&
           a.streamBits == b.streamBits &&
           a.emittedBits == b.emittedBits &&
           a.outputBits == b.outputBits &&
           a.inputStarvedCycles == b.inputStarvedCycles &&
           a.outputBlockedCycles == b.outputBlockedCycles &&
           a.keptTokens == b.keptTokens &&
           a.originalTokens == b.originalTokens &&
           a.enqueueCycle == b.enqueueCycle &&
           a.admittedCycle == b.admittedCycle &&
           a.completedCycle == b.completedCycle && a.output == b.output;
}

Session::Session(const lang::Program &program,
                 const SessionConfig &config)
    : config_(config), system_(program, config.system, config.numSlots),
      slots_(system_.numPus())
{
    if (config_.epochCycles == 0)
        panic("SessionConfig::epochCycles must be nonzero");
    queueDepthTrack_.name = "session/queue_depth";
    inFlightTrack_.name = "session/jobs_in_flight";
    queueWaitTrack_.name = "session/queue_wait_cycles";
    system_.beginSession();
}

uint64_t
Session::submit(BitBuffer stream, JobCallback callback)
{
    return submitAt(std::move(stream), cycles(), std::move(callback));
}

uint64_t
Session::submitAt(BitBuffer stream, uint64_t enqueue_cycle,
                  JobCallback callback)
{
    if (finished_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "submit: session already finished"));
    uint64_t id = queue_.push(std::move(stream), std::move(callback),
                              enqueue_cycle, hostNowNs());
    reports_.emplace_back();
    reported_.push_back(false);
    return id;
}

void
Session::record(JobReport report, JobCallback &callback)
{
    report.completedCycle = cycles();
    report.hostDoneNs = hostNowNs();
    uint64_t id = report.jobId;
    reports_[id] = std::move(report);
    reported_[id] = true;
    ++jobsFinished_;
    if (callback)
        callback(reports_[id]);
}

void
Session::finishJobEarly(uint64_t job_id, int pu, Status status,
                        JobCallback &callback, uint64_t enqueue_cycle,
                        uint64_t host_submit_ns)
{
    JobReport report;
    report.jobId = job_id;
    report.status = std::move(status);
    report.pu = pu;
    report.channel = pu >= 0 ? system_.puChannel(pu) : -1;
    report.enqueueCycle = enqueue_cycle;
    // Never armed: the whole latency is queue wait, so the admission
    // stamp collapses onto the decision round.
    report.admittedCycle = cycles();
    report.hostSubmitNs = host_submit_ns;
    record(std::move(report), callback);
}

void
Session::harvest()
{
    for (int pu = 0; pu < system_.numPus(); ++pu) {
        Slot &slot = slots_[pu];
        if (!slot.busy)
            continue;
        if (system_.puDrained(pu)) {
            // Read the output region before retiring: retireJob parks
            // the slot and the next arm reuses the region.
            BitBuffer output = system_.jobOutput(pu);
            system::RetiredJob retired = system_.retireJob(pu);
            JobReport report;
            report.jobId = retired.jobId;
            report.status = retired.outcome.status;
            report.pu = pu;
            report.channel = system_.puChannel(pu);
            report.armCycle = retired.armCycle;
            report.retireCycle = retired.retireCycle;
            report.streamBits = retired.streamBits;
            report.emittedBits = retired.emittedBits;
            report.outputBits = retired.outcome.outputBits;
            report.inputStarvedCycles =
                retired.stats.inputStarvedCycles;
            report.outputBlockedCycles =
                retired.stats.outputBlockedCycles;
            report.keptTokens = retired.keptTokens;
            report.originalTokens = retired.originalTokens;
            report.enqueueCycle = slot.enqueueCycle;
            report.admittedCycle = slot.admittedCycle;
            report.hostSubmitNs = slot.hostSubmitNs;
            report.output = std::move(output);
            slot.busy = false;
            record(std::move(report), slot.callback);
            slot.callback = nullptr;
        } else if (system_.puShardState(pu) ==
                   system::ShardState::Halted) {
            // The channel died under this job (watchdog, cycle limit,
            // exception): the slot will never drain. Report the job
            // with the channel's status and retire the slot for good —
            // its channel-mates' jobs are stranded the same way, but
            // every other channel keeps serving.
            std::ostringstream os;
            os << "job " << slot.jobId << " stranded on halted channel "
               << system_.puChannel(pu) << ": "
               << system_.puShardStatus(pu).toString();
            JobReport report;
            report.jobId = slot.jobId;
            report.status =
                Status::make(system_.puShardStatus(pu).code, os.str());
            report.pu = pu;
            report.channel = system_.puChannel(pu);
            report.retireCycle =
                system_.shard(system_.puChannel(pu)).cycles();
            report.enqueueCycle = slot.enqueueCycle;
            report.admittedCycle = slot.admittedCycle;
            report.hostSubmitNs = slot.hostSubmitNs;
            slot.busy = false;
            slot.dead = true;
            record(std::move(report), slot.callback);
            slot.callback = nullptr;
        }
    }
}

void
Session::armFromQueue()
{
    for (int pu = 0; pu < system_.numPus() && !queue_.empty(); ++pu) {
        Slot &slot = slots_[pu];
        if (slot.busy || slot.dead)
            continue;
        if (system_.puShardState(pu) == system::ShardState::Halted) {
            slot.dead = true;
            continue;
        }
        while (!queue_.empty()) {
            PendingJob job = queue_.pop();
            Status armed =
                system_.armJob(pu, std::move(job.stream), job.id);
            if (!armed.ok()) {
                // A malformed job (bad alignment, oversized stream)
                // fails alone; the slot takes the next one.
                finishJobEarly(job.id, pu, std::move(armed),
                               job.callback, job.enqueueCycle,
                               job.hostSubmitNs);
                continue;
            }
            slot.busy = true;
            slot.jobId = job.id;
            slot.callback = std::move(job.callback);
            slot.enqueueCycle = job.enqueueCycle;
            slot.admittedCycle = cycles();
            slot.hostSubmitNs = job.hostSubmitNs;
            totalQueueWaitCycles_ +=
                slot.admittedCycle > slot.enqueueCycle
                    ? slot.admittedCycle - slot.enqueueCycle
                    : 0;
            break;
        }
    }
}

bool
Session::step()
{
    if (finished_)
        throw StatusError(Status::make(
            StatusCode::InvalidState, "step: session already finished"));
    harvest();
    armFromQueue();
    sampleSessionTracks();
    bool in_flight = false;
    for (const Slot &slot : slots_)
        in_flight |= slot.busy;
    if (!in_flight) {
        if (queue_.empty())
            return false;
        // Jobs remain but every slot is dead: report them stranded
        // rather than spinning.
        while (!queue_.empty()) {
            PendingJob job = queue_.pop();
            finishJobEarly(
                job.id, -1,
                Status::make(StatusCode::InvalidState,
                             "no live processing-unit slots remain "
                             "(every channel halted)"),
                job.callback, job.enqueueCycle, job.hostSubmitNs);
        }
        return false;
    }
    system_.stepEpoch(config_.epochCycles);
    return true;
}

void
Session::sampleSessionTracks()
{
    if (!config_.system.trace.events)
        return;
    uint64_t now = cycles();
    sampleTrack(queueDepthTrack_, now, queue_.size());
    sampleTrack(inFlightTrack_, now,
                static_cast<uint64_t>(jobsInFlight()));
    sampleTrack(queueWaitTrack_, now, totalQueueWaitCycles_);
}

int
Session::jobsInFlight() const
{
    int busy = 0;
    for (const Slot &slot : slots_)
        busy += slot.busy ? 1 : 0;
    return busy;
}

int
Session::liveSlots() const
{
    int live = 0;
    for (const Slot &slot : slots_)
        live += slot.dead ? 0 : 1;
    return live;
}

void
Session::drain()
{
    while (step()) {
    }
}

const system::RunReport &
Session::finish()
{
    drain();
    finished_ = true;
    if (config_.system.trace.events)
        system_.setSessionTracks(
            {queueDepthTrack_, inFlightTrack_, queueWaitTrack_});
    return system_.finishSession();
}

const JobReport &
Session::report(uint64_t job_id) const
{
    if (!done(job_id))
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "report: job has not finished (queued or in flight)"));
    return reports_[job_id];
}

bool
Session::done(uint64_t job_id) const
{
    return job_id < reported_.size() && reported_[job_id];
}

uint64_t
Session::cycles() const
{
    uint64_t max_cycles = 0;
    for (int c = 0; c < system_.numShards(); ++c)
        max_cycles = std::max(max_cycles, system_.shard(c).cycles());
    return max_cycles;
}

} // namespace runtime
} // namespace fleet
