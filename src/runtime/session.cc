/**
 * @file
 * Session scheduler implementation. The three-phase round (harvest →
 * arm → advance) and its fixed iteration order are the entire
 * determinism argument — see the header and DESIGN.md §5e. Nothing
 * here reads host time, thread ids, or any other nondeterministic
 * input; the underlying FleetSystem::stepEpoch is itself bit-identical
 * at every worker count.
 */

#include "runtime/session.h"

#include <chrono>
#include <sstream>
#include <utility>

namespace fleet {
namespace runtime {

namespace {

/** Host steady-clock stamp in nanoseconds (wall metrics only). */
uint64_t
hostNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Append a (cycle, value) sample, deduplicating repeats of the last
 * value so idle rounds don't grow the track. */
void
sampleTrack(trace::CounterTrack &track, uint64_t cycle, uint64_t value)
{
    if (!track.samples.empty() && track.samples.back().second == value)
        return;
    track.samples.emplace_back(cycle, value);
}

} // namespace

bool
operator==(const JobReport &a, const JobReport &b)
{
    // hostSubmitNs / hostDoneNs are deliberately omitted: wall-clock
    // stamps vary run to run, while everything simulated must not.
    return a.jobId == b.jobId && a.status == b.status && a.pu == b.pu &&
           a.channel == b.channel && a.armCycle == b.armCycle &&
           a.retireCycle == b.retireCycle &&
           a.streamBits == b.streamBits &&
           a.emittedBits == b.emittedBits &&
           a.outputBits == b.outputBits &&
           a.inputStarvedCycles == b.inputStarvedCycles &&
           a.outputBlockedCycles == b.outputBlockedCycles &&
           a.keptTokens == b.keptTokens &&
           a.originalTokens == b.originalTokens &&
           a.attempts == b.attempts && a.requeues == b.requeues &&
           a.enqueueCycle == b.enqueueCycle &&
           a.admittedCycle == b.admittedCycle &&
           a.completedCycle == b.completedCycle && a.output == b.output;
}

Session::Session(const lang::Program &program,
                 const SessionConfig &config)
    : config_(config), system_(program, config.system, config.numSlots),
      slots_(system_.numPus())
{
    if (config_.epochCycles == 0)
        panic("SessionConfig::epochCycles must be nonzero");
    queueDepthTrack_.name = "session/queue_depth";
    inFlightTrack_.name = "session/jobs_in_flight";
    queueWaitTrack_.name = "session/queue_wait_cycles";
    deadlineKillTrack_.name = "session/deadline_kills";
    requeueTrack_.name = "session/requeues";
    quarantineTrack_.name = "session/quarantined_slots";
    system_.beginSession();
}

uint64_t
Session::submit(BitBuffer stream, JobCallback callback)
{
    return submitAt(std::move(stream), cycles(), std::move(callback));
}

uint64_t
Session::submitAt(BitBuffer stream, uint64_t enqueue_cycle,
                  JobCallback callback, uint64_t deadline_cycle)
{
    if (finished_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "submit: session already finished"));
    uint64_t id = queue_.push(std::move(stream), std::move(callback),
                              enqueue_cycle, hostNowNs(),
                              deadline_cycle);
    reports_.emplace_back();
    reported_.push_back(false);
    return id;
}

void
Session::record(JobReport report, JobCallback &callback)
{
    report.completedCycle = cycles();
    report.hostDoneNs = hostNowNs();
    uint64_t id = report.jobId;
    reports_[id] = std::move(report);
    reported_[id] = true;
    ++jobsFinished_;
    if (callback)
        callback(reports_[id]);
}

void
Session::finishJobEarly(uint64_t job_id, int pu, Status status,
                        JobCallback &callback, uint64_t enqueue_cycle,
                        uint64_t host_submit_ns, uint32_t requeues)
{
    JobReport report;
    report.jobId = job_id;
    report.status = std::move(status);
    report.pu = pu;
    report.channel = pu >= 0 ? system_.puChannel(pu) : -1;
    report.requeues = requeues;
    report.enqueueCycle = enqueue_cycle;
    // Never armed: the whole latency is queue wait, so the admission
    // stamp collapses onto the decision round.
    report.admittedCycle = cycles();
    report.hostSubmitNs = host_submit_ns;
    record(std::move(report), callback);
}

void
Session::harvest()
{
    // Jobs pulled off halted channels this round, in PU order; they
    // re-enter the FIFO *front* after the scan so the arm phase sees
    // them before anything newly queued.
    std::vector<PendingJob> requeued;
    for (int pu = 0; pu < system_.numPus(); ++pu) {
        Slot &slot = slots_[pu];
        if (!slot.busy)
            continue;
        if (system_.puDrained(pu)) {
            // Read the output region before retiring: retireJob parks
            // the slot and the next arm reuses the region.
            BitBuffer output = system_.jobOutput(pu);
            system::RetiredJob retired = system_.retireJob(pu);
            JobReport report;
            report.jobId = retired.jobId;
            report.status = retired.outcome.status;
            report.pu = pu;
            report.channel = system_.puChannel(pu);
            report.armCycle = retired.armCycle;
            report.retireCycle = retired.retireCycle;
            report.streamBits = retired.streamBits;
            report.emittedBits = retired.emittedBits;
            report.outputBits = retired.outcome.outputBits;
            report.inputStarvedCycles =
                retired.stats.inputStarvedCycles;
            report.outputBlockedCycles =
                retired.stats.outputBlockedCycles;
            report.keptTokens = retired.keptTokens;
            report.originalTokens = retired.originalTokens;
            report.requeues = static_cast<uint32_t>(slot.requeues);
            report.enqueueCycle = slot.enqueueCycle;
            report.admittedCycle = slot.admittedCycle;
            report.hostSubmitNs = slot.hostSubmitNs;
            report.output = std::move(output);
            slot.busy = false;
            slot.stream = BitBuffer{};
            scoreSlotHealth(pu, report.status);
            record(std::move(report), slot.callback);
            slot.callback = nullptr;
        } else if (system_.puShardState(pu) ==
                   system::ShardState::Halted) {
            if (config_.requeueStranded) {
                // Recovery path (ISSUE 7): pull the job off the dead
                // channel and re-run it on a survivor, provided one
                // exists. The slot itself is still retired for good.
                bool survivor = false;
                for (int other = 0; other < system_.numPus(); ++other)
                    survivor |= !slots_[other].dead &&
                                !slots_[other].quarantined &&
                                system_.puShardState(other) !=
                                    system::ShardState::Halted;
                if (survivor) {
                    PendingJob job;
                    job.id = slot.jobId;
                    job.stream = std::move(slot.stream);
                    job.callback = std::move(slot.callback);
                    job.enqueueCycle = slot.enqueueCycle;
                    job.hostSubmitNs = slot.hostSubmitNs;
                    job.deadlineCycle = slot.deadlineCycle;
                    job.requeues =
                        static_cast<uint32_t>(slot.requeues + 1);
                    requeued.push_back(std::move(job));
                    ++jobRequeues_;
                    slot.busy = false;
                    slot.dead = true;
                    slot.callback = nullptr;
                    slot.stream = BitBuffer{};
                    continue;
                }
            }
            // The channel died under this job (watchdog, cycle limit,
            // exception): the slot will never drain. Report the job
            // with the channel's status and retire the slot for good —
            // its channel-mates' jobs are stranded the same way, but
            // every other channel keeps serving.
            std::ostringstream os;
            os << "job " << slot.jobId << " stranded on halted channel "
               << system_.puChannel(pu) << ": "
               << system_.puShardStatus(pu).toString();
            JobReport report;
            report.jobId = slot.jobId;
            report.status =
                Status::make(system_.puShardStatus(pu).code, os.str());
            report.pu = pu;
            report.channel = system_.puChannel(pu);
            report.retireCycle =
                system_.shard(system_.puChannel(pu)).cycles();
            report.requeues = static_cast<uint32_t>(slot.requeues);
            report.enqueueCycle = slot.enqueueCycle;
            report.admittedCycle = slot.admittedCycle;
            report.hostSubmitNs = slot.hostSubmitNs;
            slot.busy = false;
            slot.dead = true;
            slot.stream = BitBuffer{};
            record(std::move(report), slot.callback);
            slot.callback = nullptr;
        }
    }
    // Reverse order: the lowest-PU job lands at the very front, so
    // re-queued jobs are re-armed in the same PU order they held on
    // the dead channel — keeping the schedule a pure function of
    // simulated state.
    for (auto it = requeued.rbegin(); it != requeued.rend(); ++it)
        queue_.requeueFront(std::move(*it));
}

void
Session::scoreSlotHealth(int pu, const Status &status)
{
    if (config_.quarantineAfterFaults <= 0)
        return;
    // Only per-PU containment events indict the slot itself: channel
    // halts take out the whole channel via the dead flag, and job
    // outcomes like truncation or a deadline kill say nothing about
    // the hardware under the job.
    if (status.code != StatusCode::ParityError &&
        status.code != StatusCode::OutputOverflow)
        return;
    Slot &slot = slots_[pu];
    if (slot.quarantined)
        return;
    if (++slot.faultCount >= config_.quarantineAfterFaults) {
        slot.quarantined = true;
        ++quarantinedSlots_;
    }
}

void
Session::expireDeadlines()
{
    const uint64_t now = cycles();
    // In-queue expiry: a job whose deadline passed while waiting never
    // arms — its whole latency was queue wait.
    for (PendingJob &job : queue_.takeExpired(now)) {
        std::ostringstream os;
        os << "job " << job.id << " exceeded its deadline (cycle "
           << job.deadlineCycle << ") while queued";
        ++deadlineKills_;
        finishJobEarly(job.id, -1,
                       Status::make(StatusCode::DeadlineExceeded,
                                    os.str()),
                       job.callback, job.enqueueCycle, job.hostSubmitNs,
                       job.requeues);
    }
    // Mid-flight expiry: abandon the job through the containment path
    // (killPu + flush). The slot drains within a few cycles and the
    // next harvest retires it with DeadlineExceeded, reclaiming the
    // slot for the queue.
    for (int pu = 0; pu < system_.numPus(); ++pu) {
        Slot &slot = slots_[pu];
        if (!slot.busy || slot.deadlineCycle == 0 ||
            now < slot.deadlineCycle)
            continue;
        if (system_.puShardState(pu) == system::ShardState::Halted)
            continue; // Harvest's stranded/requeue path owns it.
        std::ostringstream os;
        os << "job " << slot.jobId << " exceeded its deadline (cycle "
           << slot.deadlineCycle << ") in flight; slot reclaimed";
        Status cancelled = system_.cancelJob(
            pu, Status::make(StatusCode::DeadlineExceeded, os.str()));
        if (cancelled.ok())
            ++deadlineKills_;
    }
}

void
Session::armFromQueue()
{
    for (int pu = 0; pu < system_.numPus() && !queue_.empty(); ++pu) {
        Slot &slot = slots_[pu];
        if (slot.busy || slot.dead || slot.quarantined)
            continue;
        if (system_.puShardState(pu) == system::ShardState::Halted) {
            slot.dead = true;
            continue;
        }
        while (!queue_.empty()) {
            PendingJob job = queue_.pop();
            // Kept pre-truncation so a halted channel's jobs can be
            // re-armed elsewhere (armJob consumes the original).
            BitBuffer stream_copy;
            if (config_.requeueStranded)
                stream_copy = job.stream;
            Status armed =
                system_.armJob(pu, std::move(job.stream), job.id);
            if (!armed.ok()) {
                // A malformed job (bad alignment, oversized stream)
                // fails alone; the slot takes the next one.
                finishJobEarly(job.id, pu, std::move(armed),
                               job.callback, job.enqueueCycle,
                               job.hostSubmitNs, job.requeues);
                continue;
            }
            slot.busy = true;
            slot.jobId = job.id;
            slot.callback = std::move(job.callback);
            slot.enqueueCycle = job.enqueueCycle;
            slot.admittedCycle = cycles();
            slot.hostSubmitNs = job.hostSubmitNs;
            slot.deadlineCycle = job.deadlineCycle;
            slot.requeues = job.requeues;
            slot.stream = std::move(stream_copy);
            totalQueueWaitCycles_ +=
                slot.admittedCycle > slot.enqueueCycle
                    ? slot.admittedCycle - slot.enqueueCycle
                    : 0;
            break;
        }
    }
}

bool
Session::step()
{
    if (finished_)
        throw StatusError(Status::make(
            StatusCode::InvalidState, "step: session already finished"));
    harvest();
    expireDeadlines();
    armFromQueue();
    sampleSessionTracks();
    bool in_flight = false;
    for (const Slot &slot : slots_)
        in_flight |= slot.busy;
    if (!in_flight) {
        if (queue_.empty())
            return false;
        // Jobs remain but every slot is dead or quarantined: report
        // them stranded rather than spinning.
        while (!queue_.empty()) {
            PendingJob job = queue_.pop();
            finishJobEarly(
                job.id, -1,
                Status::make(StatusCode::InvalidState,
                             "no live processing-unit slots remain "
                             "(every channel halted)"),
                job.callback, job.enqueueCycle, job.hostSubmitNs,
                job.requeues);
        }
        return false;
    }
    system_.stepEpoch(config_.epochCycles);
    return true;
}

void
Session::sampleSessionTracks()
{
    if (!config_.system.trace.events)
        return;
    uint64_t now = cycles();
    sampleTrack(queueDepthTrack_, now, queue_.size());
    sampleTrack(inFlightTrack_, now,
                static_cast<uint64_t>(jobsInFlight()));
    sampleTrack(queueWaitTrack_, now, totalQueueWaitCycles_);
    sampleTrack(deadlineKillTrack_, now, deadlineKills_);
    sampleTrack(requeueTrack_, now, jobRequeues_);
    sampleTrack(quarantineTrack_, now,
                static_cast<uint64_t>(quarantinedSlots_));
}

int
Session::jobsInFlight() const
{
    int busy = 0;
    for (const Slot &slot : slots_)
        busy += slot.busy ? 1 : 0;
    return busy;
}

int
Session::liveSlots() const
{
    int live = 0;
    for (const Slot &slot : slots_)
        live += (slot.dead || slot.quarantined) ? 0 : 1;
    return live;
}

void
Session::drain()
{
    while (step()) {
    }
}

const system::RunReport &
Session::finish()
{
    drain();
    finished_ = true;
    if (config_.system.trace.events)
        system_.setSessionTracks(
            {queueDepthTrack_, inFlightTrack_, queueWaitTrack_,
             deadlineKillTrack_, requeueTrack_, quarantineTrack_});
    return system_.finishSession();
}

const JobReport &
Session::report(uint64_t job_id) const
{
    if (!done(job_id))
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "report: job has not finished (queued or in flight)"));
    return reports_[job_id];
}

bool
Session::done(uint64_t job_id) const
{
    return job_id < reported_.size() && reported_[job_id];
}

uint64_t
Session::cycles() const
{
    uint64_t max_cycles = 0;
    for (int c = 0; c < system_.numShards(); ++c)
        max_cycles = std::max(max_cycles, system_.shard(c).cycles());
    return max_cycles;
}

} // namespace runtime
} // namespace fleet
