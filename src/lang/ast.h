#ifndef FLEET_LANG_AST_H
#define FLEET_LANG_AST_H

/**
 * @file
 * Abstract syntax tree of the Fleet processing-unit language (Section 3 of
 * the paper). A Fleet program describes the "virtual cycle" executed for
 * every input token of a stream: concurrent assignments to state elements
 * (registers, vector registers, BRAMs), token emits, `if`/`else if`/`else`
 * gating, and `while` loops that take extra virtual cycles before the input
 * token advances.
 *
 * The AST is immutable once built (expressions are shared const nodes), so
 * the functional simulator, the compiler, and the baseline models can all
 * analyze the same program object.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/ops.h"

namespace fleet {
namespace lang {

// ---------------------------------------------------------------------------
// State element declarations
// ---------------------------------------------------------------------------

/** A register with an explicit bit width and reset value. */
struct RegDecl
{
    int id;
    std::string name;
    int width;
    uint64_t init;
};

/** A random-access vector of registers. */
struct VecRegDecl
{
    int id;
    std::string name;
    int elements;
    int width;
    uint64_t init;
    int indexWidth; ///< Width of index expressions (bits to address elements).
};

/**
 * A BRAM: single read port and single write port per virtual cycle, one
 * cycle of read latency in hardware (pipelined away by the compiler).
 * Zero-initialized, as on most FPGAs (paper, Section 3).
 */
struct BramDecl
{
    int id;
    std::string name;
    int elements;
    int width;
    int addrWidth;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

enum class ExprKind
{
    Const,          ///< Literal value.
    Input,          ///< Current input token.
    StreamFinished, ///< True during the post-stream cleanup virtual cycle.
    RegRead,        ///< Current value of a register.
    VecRegRead,     ///< Random-access read of a vector register element.
    BramRead,       ///< BRAM read (restricted; see lang/check.h).
    Bin,            ///< Binary operator.
    Un,             ///< Unary operator.
    Mux,            ///< cond ? a : b (cond is a non-zero test).
    Slice,          ///< Bits [lo, lo+width) of the operand.
    Concat,         ///< {hi, lo} concatenation; lo occupies the low bits.
};

struct ExprNode
{
    ExprKind kind;
    int width;

    /**
     * Process-unique node id, assigned lazily by the functional
     * simulator's per-virtual-cycle memo table. Expressions form DAGs
     * (builders reuse Value subtrees), so evaluation must cache per node
     * or deep chains blow up exponentially.
     */
    mutable int64_t evalId = -1;

    /** Memo for containsBramRead() (-1 unknown, else 0/1); expressions
     * are immutable DAGs, so the answer never changes. */
    mutable int8_t hasBramReadMemo = -1;

    // Const
    uint64_t value = 0;

    // RegRead / VecRegRead / BramRead: declaration id.
    int stateId = -1;

    // Operators.
    BinOp binOp = BinOp::Add;
    UnOp unOp = UnOp::Not;

    // Children: operands / index / address / mux legs.
    Expr a, b, c;

    // Slice.
    int sliceLo = 0;
};

/// @name Expression constructors. All return shared immutable nodes.
/// @{
Expr constExpr(uint64_t value, int width);
Expr inputExpr(int token_width);
Expr streamFinishedExpr();
Expr regReadExpr(const RegDecl &reg);
Expr vecRegReadExpr(const VecRegDecl &vreg, Expr index);
Expr bramReadExpr(const BramDecl &bram, Expr addr);
Expr binExpr(BinOp op, Expr a, Expr b);
Expr unExpr(UnOp op, Expr a);
Expr muxExpr(Expr cond, Expr a, Expr b);
Expr sliceExpr(Expr a, int hi, int lo);
Expr concatExpr(Expr hi, Expr lo);
/// @}

/** Structural equality of expression DAGs (used to merge BRAM reads). */
bool exprEqual(const Expr &a, const Expr &b);

/** Assign (or return) the node's process-unique eval id. */
int64_t exprEvalId(const ExprNode *node);

/** True if any BramRead node appears in the expression. */
bool containsBramRead(const Expr &e);

/** Render an expression as a compact string (debugging, Verilog names). */
std::string exprToString(const Expr &e);

/** Total number of operator/leaf nodes (used by the area and SIMT models). */
int exprNodeCount(const Expr &e);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/** Assignment target: a register, vector-register element, or BRAM word. */
struct LValue
{
    enum class Kind { Reg, VecElem, BramElem };
    Kind kind;
    int stateId;
    Expr index; ///< Element index / BRAM address (null for Reg).
};

struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct AssignStmt
{
    LValue target;
    Expr value;
};

struct EmitStmt
{
    Expr value;
};

struct IfStmt
{
    /** (condition, block) arms in priority order; empty cond == else. */
    std::vector<std::pair<Expr, Block>> arms;
    Block elseBlock;
};

struct WhileStmt
{
    Expr cond;
    Block body;
};

struct Stmt
{
    std::variant<AssignStmt, EmitStmt, IfStmt, WhileStmt> node;
};

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

/** A complete Fleet processing-unit program. */
struct Program
{
    std::string name;
    int inputTokenWidth = 8;
    int outputTokenWidth = 8;

    /**
     * Declared worst-case output bytes per input byte, used by the host
     * runtime to auto-size each unit's DRAM output region (the paper's
     * runtime makes the user pick output buffer sizes; declaring the
     * expansion on the program keeps that knowledge with the code that
     * determines it). The runtime never sizes below 2.0. A unit that
     * out-emits its declaration is contained with an OutputOverflow
     * outcome rather than aborting the system.
     */
    double maxOutputExpansion = 2.0;

    std::vector<RegDecl> regs;
    std::vector<VecRegDecl> vregs;
    std::vector<BramDecl> brams;

    Block body;

    const RegDecl &reg(int id) const { return regs.at(id); }
    const VecRegDecl &vreg(int id) const { return vregs.at(id); }
    const BramDecl &bram(int id) const { return brams.at(id); }
};

} // namespace lang
} // namespace fleet

#endif // FLEET_LANG_AST_H
