#ifndef FLEET_LANG_ANALYZE_H
#define FLEET_LANG_ANALYZE_H

/**
 * @file
 * Static multiplicity analyzer — the paper's suggested extension
 * ("a static analyzer could also guarantee that certain well-structured
 * programs do not violate the restrictions", Section 3). It proves, for
 * well-structured programs, that at most one emit / BRAM write / BRAM
 * read address / register assignment can fire per virtual cycle, by
 * showing every conflicting pair of actions lies in different arms of a
 * common `if` (or on opposite sides of the while/post-loop divide).
 *
 * When a restriction is proven, the dynamic checks in the functional
 * simulator are guaranteed never to fire, and a user can skip the
 * paper's runtime-check insertion (compile/compiler.h's
 * insertRuntimeChecks) for that resource.
 */

#include <string>
#include <vector>

#include "lang/ast.h"

namespace fleet {
namespace lang {

struct StaticAnalysis
{
    /** At most one emit per virtual cycle, provably. */
    bool emitsExclusive = true;
    /** Per register: at most one assignment per virtual cycle. */
    std::vector<bool> regAssignsExclusive;
    /** Per BRAM: at most one write per virtual cycle. */
    std::vector<bool> bramWritesExclusive;
    /**
     * Per BRAM: at most one *distinct* read address per virtual cycle
     * (structurally equal addresses are a single read and never
     * conflict).
     */
    std::vector<bool> bramReadsExclusive;

    /** Every restriction is statically guaranteed. */
    bool allSafe() const;

    /** Human-readable summary of anything not statically proven. */
    std::string report(const Program &program) const;
};

/** Analyze a checked program. */
StaticAnalysis analyzeProgram(const Program &program);

} // namespace lang
} // namespace fleet

#endif // FLEET_LANG_ANALYZE_H
