#include "lang/builder.h"

#include "lang/check.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace lang {

const LValue &
Value::lvalue() const
{
    if (!lval_)
        fatal("expression ", exprToString(expr_),
              " is not assignable (not a register, vector element, or "
              "BRAM word)");
    return *lval_;
}

Value
Value::resize(int width) const
{
    if (width == expr_->width)
        return *this;
    if (width < expr_->width)
        return slice(width - 1, 0);
    return Value(concatExpr(constExpr(0, width - expr_->width), expr_));
}

Value
slt(const Value &a, const Value &b)
{
    return Value(binExpr(BinOp::Slt, a.expr(), b.expr()));
}

Value
sle(const Value &a, const Value &b)
{
    return Value(binExpr(BinOp::Sle, a.expr(), b.expr()));
}

Value
sgt(const Value &a, const Value &b)
{
    return Value(binExpr(BinOp::Sgt, a.expr(), b.expr()));
}

Value
sge(const Value &a, const Value &b)
{
    return Value(binExpr(BinOp::Sge, a.expr(), b.expr()));
}

Value
mux(const Value &cond, const Value &a, const Value &b)
{
    return Value(muxExpr(cond.expr(), a.expr(), b.expr()));
}

Value
cat(const Value &hi, const Value &lo)
{
    return Value(concatExpr(hi.expr(), lo.expr()));
}

Value
Bram::operator[](const Value &addr) const
{
    Expr addr_expr = addr.expr();
    const BramDecl &decl = builder_->programForHandles().bram(id_);
    LValue lv{LValue::Kind::BramElem, id_, addr_expr};
    return Value(bramReadExpr(decl, addr_expr), std::move(lv));
}

Value
VecReg::operator[](const Value &index) const
{
    Expr idx_expr = index.expr();
    const VecRegDecl &decl = builder_->programForHandles().vreg(id_);
    LValue lv{LValue::Kind::VecElem, id_, idx_expr};
    return Value(vecRegReadExpr(decl, idx_expr), std::move(lv));
}

ProgramBuilder::ProgramBuilder(std::string name, int input_token_width,
                               int output_token_width)
{
    if (input_token_width < 1 || input_token_width > kMaxValueWidth ||
        output_token_width < 1 || output_token_width > kMaxValueWidth) {
        fatal("token widths must be in [1, ", kMaxValueWidth, "]");
    }
    program_.name = std::move(name);
    program_.inputTokenWidth = input_token_width;
    program_.outputTokenWidth = output_token_width;
    blockStack_.push_back(&program_.body);
}

Value
ProgramBuilder::reg(const std::string &name, int width, uint64_t init)
{
    if (finished_)
        fatal("ProgramBuilder used after finish()");
    if (width < 1 || width > kMaxValueWidth)
        fatal("register ", name, ": width ", width, " out of range");
    if (truncTo(init, width) != init)
        fatal("register ", name, ": init ", init, " does not fit in ",
              width, " bits");
    RegDecl decl{static_cast<int>(program_.regs.size()), name, width, init};
    program_.regs.push_back(decl);
    LValue lv{LValue::Kind::Reg, decl.id, nullptr};
    return Value(regReadExpr(decl), std::move(lv));
}

VecReg
ProgramBuilder::vreg(const std::string &name, int elements, int width,
                     uint64_t init)
{
    if (finished_)
        fatal("ProgramBuilder used after finish()");
    if (elements < 1)
        fatal("vector register ", name, ": needs at least one element");
    if (width < 1 || width > kMaxValueWidth)
        fatal("vector register ", name, ": width ", width, " out of range");
    VecRegDecl decl{static_cast<int>(program_.vregs.size()), name, elements,
                    width, truncTo(init, width),
                    indexWidth(static_cast<uint64_t>(elements))};
    program_.vregs.push_back(decl);
    return VecReg(this, decl.id, elements, width);
}

Bram
ProgramBuilder::bram(const std::string &name, int elements, int width)
{
    if (finished_)
        fatal("ProgramBuilder used after finish()");
    if (elements < 1)
        fatal("BRAM ", name, ": needs at least one element");
    if (width < 1 || width > kMaxValueWidth)
        fatal("BRAM ", name, ": width ", width, " out of range");
    BramDecl decl{static_cast<int>(program_.brams.size()), name, elements,
                  width, indexWidth(static_cast<uint64_t>(elements))};
    program_.brams.push_back(decl);
    return Bram(this, decl.id, elements, width);
}

Value
ProgramBuilder::input() const
{
    return Value(inputExpr(program_.inputTokenWidth));
}

Value
ProgramBuilder::streamFinished() const
{
    return Value(streamFinishedExpr());
}

void
ProgramBuilder::maxOutputExpansion(double factor)
{
    if (finished_)
        fatal("ProgramBuilder used after finish()");
    if (!(factor > 0.0))
        fatal("maxOutputExpansion: factor must be positive, got ", factor);
    program_.maxOutputExpansion = factor;
}

void
ProgramBuilder::assign(const Value &target, const Value &value)
{
    Stmt stmt;
    stmt.node = AssignStmt{target.lvalue(), value.expr()};
    append(std::make_shared<Stmt>(std::move(stmt)));
}

void
ProgramBuilder::emit(const Value &value)
{
    Stmt stmt;
    stmt.node = EmitStmt{value.expr()};
    append(std::make_shared<Stmt>(std::move(stmt)));
}

IfChain
ProgramBuilder::if_(const Value &cond, const std::function<void()> &body)
{
    IfStmt if_stmt;
    if_stmt.arms.emplace_back(cond.expr(), buildBlock(body));
    Stmt stmt;
    stmt.node = std::move(if_stmt);
    auto ptr = std::make_shared<Stmt>(std::move(stmt));
    Stmt *raw = ptr.get();
    append(std::move(ptr));
    return IfChain(this, raw);
}

void
ProgramBuilder::while_(const Value &cond, const std::function<void()> &body)
{
    if (whileDepth_ > 0)
        fatal("nested while loops are not supported (program ",
              program_.name, ")");
    ++whileDepth_;
    Block block = buildBlock(body);
    --whileDepth_;
    Stmt stmt;
    stmt.node = WhileStmt{cond.expr(), std::move(block)};
    append(std::make_shared<Stmt>(std::move(stmt)));
}

IfChain &
IfChain::elseIf(const Value &cond, const std::function<void()> &body)
{
    auto &if_stmt = std::get<IfStmt>(stmt_->node);
    if (!if_stmt.elseBlock.empty())
        fatal("elseIf after else_");
    if_stmt.arms.emplace_back(cond.expr(), builder_->buildBlock(body));
    return *this;
}

void
IfChain::else_(const std::function<void()> &body)
{
    auto &if_stmt = std::get<IfStmt>(stmt_->node);
    if (!if_stmt.elseBlock.empty())
        fatal("multiple else_ arms");
    if_stmt.elseBlock = builder_->buildBlock(body);
}

void
ProgramBuilder::append(StmtPtr stmt)
{
    if (finished_)
        fatal("ProgramBuilder used after finish()");
    blockStack_.back()->push_back(std::move(stmt));
}

Block
ProgramBuilder::buildBlock(const std::function<void()> &body)
{
    Block block;
    blockStack_.push_back(&block);
    body();
    blockStack_.pop_back();
    return block;
}

Program
ProgramBuilder::finish()
{
    if (finished_)
        fatal("ProgramBuilder::finish() called twice");
    finished_ = true;
    checkProgram(program_);
    return std::move(program_);
}

} // namespace lang
} // namespace fleet
