#include "lang/check.h"

#include "lang/flatten.h"
#include "util/logging.h"

namespace fleet {
namespace lang {

namespace {

int
lvalueWidth(const Program &program, const LValue &lv)
{
    switch (lv.kind) {
      case LValue::Kind::Reg:
        return program.reg(lv.stateId).width;
      case LValue::Kind::VecElem:
        return program.vreg(lv.stateId).width;
      case LValue::Kind::BramElem:
        return program.bram(lv.stateId).width;
    }
    panic("lvalueWidth: unknown lvalue kind");
}

std::string
lvalueName(const Program &program, const LValue &lv)
{
    switch (lv.kind) {
      case LValue::Kind::Reg:
        return program.reg(lv.stateId).name;
      case LValue::Kind::VecElem:
        return program.vreg(lv.stateId).name;
      case LValue::Kind::BramElem:
        return program.bram(lv.stateId).name;
    }
    panic("lvalueName: unknown lvalue kind");
}

} // namespace

void
checkProgram(const Program &program)
{
    FlatProgram flat = flatten(program);

    for (const auto &read : flat.bramReads) {
        const auto &bram = program.bram(read.bramId);
        if (containsBramRead(read.addr)) {
            fatal(program.name, ": dependent BRAM read: address ",
                  exprToString(read.addr), " of BRAM ", bram.name,
                  " contains another BRAM read");
        }
    }

    // A BRAM with more than one distinct read address needs its gating
    // conditions to select the address one cycle ahead, so those
    // conditions must themselves be BRAM-free. A single-address BRAM's
    // read is issued unconditionally and its gates are unrestricted.
    for (const auto &bram : program.brams) {
        std::vector<const lang::BramReadOcc *> occs;
        for (const auto &read : flat.bramReads)
            if (read.bramId == bram.id)
                occs.push_back(&read);
        bool multi_addr = false;
        for (size_t i = 1; i < occs.size() && !multi_addr; ++i)
            multi_addr = !exprEqual(occs[i]->addr, occs[0]->addr);
        if (!multi_addr)
            continue;
        for (const auto *read : occs) {
            if (read->cond && containsBramRead(read->cond)) {
                fatal(program.name, ": dependent BRAM read: BRAM ",
                      bram.name, " is read at multiple addresses and the "
                      "read gated by ", exprToString(read->cond),
                      " depends on a BRAM read");
            }
        }
        for (const auto &cond : flat.whileConds) {
            if (containsBramRead(cond)) {
                fatal(program.name, ": while condition ",
                      exprToString(cond), " contains a BRAM read while "
                      "BRAM ", bram.name, " is read at multiple addresses");
            }
        }
    }

    for (const auto &assign : flat.assigns) {
        int target_width = lvalueWidth(program, assign.target);
        if (assign.value->width > target_width) {
            fatal(program.name, ": assignment to ",
                  lvalueName(program, assign.target), " (", target_width,
                  " bits) from wider value ", exprToString(assign.value),
                  " (", assign.value->width,
                  " bits); use Value::resize for explicit truncation");
        }
    }

    for (const auto &emit : flat.emits) {
        if (emit.value->width != program.outputTokenWidth) {
            fatal(program.name, ": emit of ", exprToString(emit.value),
                  " (", emit.value->width, " bits) does not match output "
                  "token width ", program.outputTokenWidth,
                  "; use Value::resize");
        }
    }
}

} // namespace lang
} // namespace fleet
