#include "lang/analyze.h"

#include <sstream>

#include "lang/flatten.h"
#include "util/logging.h"

namespace fleet {
namespace lang {

namespace {

/** Structural position of an action: the chain of (if, arm) choices
 * leading to it, plus which while loop (if any) contains it. */
struct Path
{
    struct Step
    {
        const Stmt *ifStmt;
        int arm; ///< Arm index; -1 for the else block.
    };
    std::vector<Step> steps;
    int whileClass = 0; ///< 0 = outside all loops, else 1-based loop id.
};

/**
 * Two actions provably cannot fire in the same virtual cycle if their
 * paths diverge into different arms of a common `if`, or if exactly one
 * of them is inside a while loop (loop bodies and post-loop statements
 * are separated by while_done).
 */
bool
provablyExclusive(const Path &a, const Path &b)
{
    size_t common = std::min(a.steps.size(), b.steps.size());
    for (size_t i = 0; i < common; ++i) {
        const auto &sa = a.steps[i];
        const auto &sb = b.steps[i];
        if (sa.ifStmt == sb.ifStmt && sa.arm == sb.arm)
            continue;
        if (sa.ifStmt == sb.ifStmt)
            return true; // Different arms of the same if.
        // Different statements at the same depth: no structural
        // exclusivity from the if tree; fall through to the while rule.
        break;
    }
    // The actions can co-fire unless the while/post-loop divide
    // separates them (while_done gates everything outside all loops).
    return (a.whileClass == 0) != (b.whileClass == 0);
}

struct Collected
{
    std::vector<Path> emits;
    std::vector<std::vector<Path>> regAssigns;
    std::vector<std::vector<Path>> bramWrites;
    /** Per BRAM: (address expression, path) of each read occurrence. */
    std::vector<std::vector<std::pair<Expr, Path>>> bramReads;
};

class Walker
{
  public:
    Walker(const Program &program, Collected &out)
        : program_(program), out_(out)
    {
        out_.regAssigns.resize(program.regs.size());
        out_.bramWrites.resize(program.brams.size());
        out_.bramReads.resize(program.brams.size());
    }

    void
    walkBlock(const Block &block, Path path)
    {
        for (const auto &stmt : block)
            walkStmt(*stmt, path);
    }

  private:
    void
    collectReads(const Expr &e, const Path &path)
    {
        if (!e || !containsBramRead(e))
            return;
        if (e->kind == ExprKind::BramRead)
            out_.bramReads[e->stateId].emplace_back(e->a, path);
        collectReads(e->a, path);
        collectReads(e->b, path);
        collectReads(e->c, path);
    }

    void
    walkStmt(const Stmt &stmt, const Path &path)
    {
        if (const auto *assign = std::get_if<AssignStmt>(&stmt.node)) {
            collectReads(assign->value, path);
            if (assign->target.index)
                collectReads(assign->target.index, path);
            switch (assign->target.kind) {
              case LValue::Kind::Reg:
                out_.regAssigns[assign->target.stateId].push_back(path);
                break;
              case LValue::Kind::BramElem:
                out_.bramWrites[assign->target.stateId].push_back(path);
                break;
              case LValue::Kind::VecElem:
                // Vector elements allow concurrent distinct-index
                // writes; index equality is data dependent, so vector
                // registers stay under the dynamic check.
                break;
            }
        } else if (const auto *emit = std::get_if<EmitStmt>(&stmt.node)) {
            collectReads(emit->value, path);
            out_.emits.push_back(path);
        } else if (const auto *if_stmt = std::get_if<IfStmt>(&stmt.node)) {
            for (size_t arm = 0; arm < if_stmt->arms.size(); ++arm) {
                collectReads(if_stmt->arms[arm].first, path);
                Path inner = path;
                inner.steps.push_back({&stmt, static_cast<int>(arm)});
                walkBlock(if_stmt->arms[arm].second, inner);
            }
            if (!if_stmt->elseBlock.empty()) {
                Path inner = path;
                inner.steps.push_back({&stmt, -1});
                walkBlock(if_stmt->elseBlock, inner);
            }
        } else if (const auto *wh = std::get_if<WhileStmt>(&stmt.node)) {
            collectReads(wh->cond, path);
            Path inner = path;
            inner.whileClass = ++whileCount_;
            walkBlock(wh->body, inner);
        } else {
            panic("analyze: unknown statement kind");
        }
    }

    const Program &program_;
    Collected &out_;
    int whileCount_ = 0;
};

bool
pairwiseExclusive(const std::vector<Path> &paths)
{
    for (size_t i = 0; i < paths.size(); ++i)
        for (size_t j = i + 1; j < paths.size(); ++j)
            if (!provablyExclusive(paths[i], paths[j]))
                return false;
    return true;
}

} // namespace

bool
StaticAnalysis::allSafe() const
{
    if (!emitsExclusive)
        return false;
    for (bool safe : regAssignsExclusive)
        if (!safe)
            return false;
    for (bool safe : bramWritesExclusive)
        if (!safe)
            return false;
    for (bool safe : bramReadsExclusive)
        if (!safe)
            return false;
    return true;
}

std::string
StaticAnalysis::report(const Program &program) const
{
    std::ostringstream os;
    if (!emitsExclusive)
        os << "emits not provably exclusive\n";
    for (size_t r = 0; r < regAssignsExclusive.size(); ++r) {
        if (!regAssignsExclusive[r]) {
            os << "register " << program.regs[r].name
               << ": assignments not provably exclusive\n";
        }
    }
    for (size_t b = 0; b < bramWritesExclusive.size(); ++b) {
        if (!bramWritesExclusive[b]) {
            os << "BRAM " << program.brams[b].name
               << ": writes not provably exclusive\n";
        }
    }
    for (size_t b = 0; b < bramReadsExclusive.size(); ++b) {
        if (!bramReadsExclusive[b]) {
            os << "BRAM " << program.brams[b].name
               << ": distinct read addresses not provably exclusive\n";
        }
    }
    std::string text = os.str();
    return text.empty() ? "all restrictions statically guaranteed" : text;
}

StaticAnalysis
analyzeProgram(const Program &program)
{
    Collected collected;
    Walker walker(program, collected);
    walker.walkBlock(program.body, Path{});

    StaticAnalysis analysis;
    analysis.emitsExclusive = pairwiseExclusive(collected.emits);
    for (const auto &paths : collected.regAssigns)
        analysis.regAssignsExclusive.push_back(pairwiseExclusive(paths));
    for (const auto &paths : collected.bramWrites)
        analysis.bramWritesExclusive.push_back(pairwiseExclusive(paths));
    for (const auto &reads : collected.bramReads) {
        bool safe = true;
        for (size_t i = 0; i < reads.size() && safe; ++i) {
            for (size_t j = i + 1; j < reads.size() && safe; ++j) {
                if (exprEqual(reads[i].first, reads[j].first))
                    continue; // Same address: a single read.
                if (!provablyExclusive(reads[i].second, reads[j].second))
                    safe = false;
            }
        }
        analysis.bramReadsExclusive.push_back(safe);
    }
    return analysis;
}

} // namespace lang
} // namespace fleet
