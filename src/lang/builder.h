#ifndef FLEET_LANG_BUILDER_H
#define FLEET_LANG_BUILDER_H

/**
 * @file
 * Embedded-DSL front end for the Fleet language. Mirrors the paper's
 * Scala-embedded language as a C++-embedded one: operator-overloaded
 * `Value` expressions, `if_`/`elseIf`/`else_` gating, `while_` loops, and
 * `emit`. Host C++ code that calls builder methods in loops plays the role
 * of Scala metaprogramming for parameterized units (e.g. the regex
 * application generates its NFA circuit this way).
 *
 * Example (the paper's Figure 3 histogram unit):
 * @code
 *   ProgramBuilder b("BlockFrequencies", 8, 8);
 *   Value itemCounter = b.reg("itemCounter", 7, 0);
 *   Bram frequencies = b.bram("frequencies", 256, 8);
 *   Value frequenciesIdx = b.reg("frequenciesIdx", 9, 0);
 *   b.if_(itemCounter == 100, [&] {
 *       b.while_(frequenciesIdx < 256, [&] {
 *           b.emit(frequencies[frequenciesIdx]);
 *           b.assign(frequencies[frequenciesIdx], 0);
 *           b.assign(frequenciesIdx, frequenciesIdx + 1);
 *       });
 *       b.assign(frequenciesIdx, 0);
 *   });
 *   b.assign(frequencies[b.input()], frequencies[b.input()] + 1);
 *   b.assign(itemCounter, mux(itemCounter == 100, 1, itemCounter + 1));
 *   Program p = b.finish();
 * @endcode
 */

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace fleet {
namespace lang {

class ProgramBuilder;

/**
 * An expression handle with operator overloads. If the handle refers to a
 * register, vector-register element, or BRAM word, it can also be used as
 * an assignment target.
 */
class Value
{
  public:
    /** Literal; width is the minimum needed to represent the value. */
    Value(uint64_t v) : expr_(constExpr(v, bitsToRepresent(v))) {}
    Value(int v) : Value(uint64_t(v)) {}
    explicit Value(Expr e) : expr_(std::move(e)) {}

    /** Literal with an explicit width. */
    static Value lit(uint64_t v, int width)
    {
        return Value(constExpr(v, width));
    }

    const Expr &expr() const { return expr_; }
    int width() const { return expr_->width; }
    bool isLValue() const { return lval_.has_value(); }
    const LValue &lvalue() const;

    Value operator+(const Value &o) const { return bin(BinOp::Add, o); }
    Value operator-(const Value &o) const { return bin(BinOp::Sub, o); }
    Value operator*(const Value &o) const { return bin(BinOp::Mul, o); }
    Value operator&(const Value &o) const { return bin(BinOp::And, o); }
    Value operator|(const Value &o) const { return bin(BinOp::Or, o); }
    Value operator^(const Value &o) const { return bin(BinOp::Xor, o); }
    Value operator<<(const Value &o) const { return bin(BinOp::Shl, o); }
    Value operator>>(const Value &o) const { return bin(BinOp::Shr, o); }
    Value operator==(const Value &o) const { return bin(BinOp::Eq, o); }
    Value operator!=(const Value &o) const { return bin(BinOp::Ne, o); }
    Value operator<(const Value &o) const { return bin(BinOp::Ult, o); }
    Value operator<=(const Value &o) const { return bin(BinOp::Ule, o); }
    Value operator>(const Value &o) const { return bin(BinOp::Ugt, o); }
    Value operator>=(const Value &o) const { return bin(BinOp::Uge, o); }
    Value operator&&(const Value &o) const { return bin(BinOp::LAnd, o); }
    Value operator||(const Value &o) const { return bin(BinOp::LOr, o); }
    Value operator~() const { return Value(unExpr(UnOp::Not, expr_)); }
    Value operator!() const { return Value(unExpr(UnOp::LNot, expr_)); }
    Value operator-() const { return Value(unExpr(UnOp::Neg, expr_)); }

    /** Bits [hi:lo], inclusive, as in Verilog. */
    Value slice(int hi, int lo) const
    {
        return Value(sliceExpr(expr_, hi, lo));
    }
    /** Single bit [i]. */
    Value bit(int i) const { return slice(i, i); }
    /** Zero-extend or truncate to an exact width. */
    Value resize(int width) const;

  private:
    friend class ProgramBuilder;
    friend class Bram;
    friend class VecReg;

    Value(Expr e, LValue lv) : expr_(std::move(e)), lval_(std::move(lv)) {}
    Value bin(BinOp op, const Value &o) const
    {
        return Value(binExpr(op, expr_, o.expr_));
    }

    Expr expr_;
    std::optional<LValue> lval_;
};

/// @name Signed comparisons and other free helpers.
/// @{
Value slt(const Value &a, const Value &b);
Value sle(const Value &a, const Value &b);
Value sgt(const Value &a, const Value &b);
Value sge(const Value &a, const Value &b);
Value mux(const Value &cond, const Value &a, const Value &b);
Value cat(const Value &hi, const Value &lo);
/// @}

/** Handle for a BRAM; index it to obtain a readable/assignable word. */
class Bram
{
  public:
    Value operator[](const Value &addr) const;
    int id() const { return id_; }
    int elements() const { return elements_; }
    int width() const { return width_; }

  private:
    friend class ProgramBuilder;
    Bram(ProgramBuilder *b, int id, int elements, int width)
        : builder_(b), id_(id), elements_(elements), width_(width)
    {
    }

    ProgramBuilder *builder_;
    int id_;
    int elements_;
    int width_;
};

/** Handle for a vector register; index it like a BRAM (no access limits). */
class VecReg
{
  public:
    Value operator[](const Value &index) const;
    int id() const { return id_; }
    int elements() const { return elements_; }
    int width() const { return width_; }

  private:
    friend class ProgramBuilder;
    VecReg(ProgramBuilder *b, int id, int elements, int width)
        : builder_(b), id_(id), elements_(elements), width_(width)
    {
    }

    ProgramBuilder *builder_;
    int id_;
    int elements_;
    int width_;
};

/** Returned by if_() so `elseIf`/`else_` arms can be chained. */
class IfChain
{
  public:
    IfChain &elseIf(const Value &cond, const std::function<void()> &body);
    void else_(const std::function<void()> &body);

  private:
    friend class ProgramBuilder;
    IfChain(ProgramBuilder *b, Stmt *stmt) : builder_(b), stmt_(stmt) {}

    ProgramBuilder *builder_;
    Stmt *stmt_;
};

class ProgramBuilder
{
  public:
    ProgramBuilder(std::string name, int input_token_width,
                   int output_token_width);

    /// @name State element declarations.
    /// @{
    Value reg(const std::string &name, int width, uint64_t init = 0);
    VecReg vreg(const std::string &name, int elements, int width,
                uint64_t init = 0);
    Bram bram(const std::string &name, int elements, int width);
    /// @}

    /** The current input token. */
    Value input() const;
    /** True during the post-stream cleanup virtual cycle. */
    Value streamFinished() const;

    /**
     * Declare the program's worst-case output bytes per input byte so
     * the runtime can auto-size output regions (see
     * lang::Program::maxOutputExpansion). E.g. the Figure 3 histogram
     * emits 256 tokens per 100-token block: expansion 2.56.
     */
    void maxOutputExpansion(double factor);

    /** Concurrent assignment to a register / vector element / BRAM word. */
    void assign(const Value &target, const Value &value);

    /** Emit an output token (at most one per virtual cycle). */
    void emit(const Value &value);

    /** Conditional block; returns a chain for elseIf/else_. */
    IfChain if_(const Value &cond, const std::function<void()> &body);

    /**
     * While loop: the body executes for extra virtual cycles (without
     * advancing the input token) until the condition is false; statements
     * outside all loops then run in a final virtual cycle. Nested while
     * loops are rejected, as in the paper.
     */
    void while_(const Value &cond, const std::function<void()> &body);

    /**
     * Validate and return the finished program. Runs the static
     * restriction checks (see lang/check.h).
     */
    Program finish();

    /** Internal: declaration lookups for Bram/VecReg handles. */
    const Program &programForHandles() const { return program_; }

  private:
    friend class IfChain;

    void append(StmtPtr stmt);
    Block buildBlock(const std::function<void()> &body);

    Program program_;
    std::vector<Block *> blockStack_;
    int whileDepth_ = 0;
    bool finished_ = false;
};

} // namespace lang
} // namespace fleet

#endif // FLEET_LANG_BUILDER_H
