#ifndef FLEET_LANG_STDLIB_H
#define FLEET_LANG_STDLIB_H

/**
 * @file
 * Library components for common Fleet patterns — the paper's stated
 * follow-on work ("We hope to add library code to Fleet to simplify this
 * and other common patterns", Section 7.2, about managing the division
 * of output words into 8-bit chunks in the integer coder).
 *
 * BitPacker encapsulates the accumulator-register pattern for assembling
 * a packed bitstream that is emitted in fixed-width output tokens:
 * variable-width fields are pushed in one virtual cycle each, tokens are
 * emitted whenever enough bits have accumulated, and the tail can be
 * zero-padded to a token boundary. All methods generate statements into
 * the current builder block, so they compose with if_/while_ control
 * exactly like hand-written assignments.
 */

#include <string>

#include "lang/builder.h"

namespace fleet {
namespace lang {
namespace lib {

class BitPacker
{
  public:
    /**
     * Declare the packer's state (an accumulator and a bit counter) in
     * `b`. `token_bits` is the emission granularity (the program's
     * output token width); `accum_bits` bounds pending bits and must
     * leave room for a push: count stays below `token_bits` after every
     * emit, so the largest pushable field is accum_bits - token_bits + 1.
     */
    BitPacker(ProgramBuilder &b, const std::string &name,
              int token_bits = 8, int accum_bits = 64);

    /// @name Condition expressions (no statements generated).
    /// @{
    /** A full output token is pending. */
    Value hasToken() const;
    /** Any bits are pending. */
    Value pending() const;
    /** Current pending bit count. */
    Value count() const { return count_; }
    /// @}

    /// @name Statement generators (call inside gated blocks; each is one
    /// virtual cycle's worth of work and writes accum/count once).
    /// @{
    /** Append the low `bits` bits of `value` (bits is an expression).
     * Bits of `value` above `bits` must already be zero. */
    void push(const Value &value, const Value &bits);
    /** Append a fixed-width field. */
    void pushFixed(const Value &value, int bits);
    /** Emit one output token and shift it out. */
    void emitToken();
    /** Emit the final partial token zero-padded, clearing the packer.
     * No-op (generates nothing) unless gated by pending(). */
    void emitPadded();
    /** Reset accumulator state (e.g. at a block boundary). */
    void clear();
    /// @}

  private:
    ProgramBuilder &b_;
    int tokenBits_;
    int accumBits_;
    Value accum_;
    Value count_;
};

} // namespace lib
} // namespace lang
} // namespace fleet

#endif // FLEET_LANG_STDLIB_H
