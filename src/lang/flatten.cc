#include "lang/flatten.h"

#include "util/logging.h"

namespace fleet {
namespace lang {

Expr
andCond(const Expr &a, const Expr &b)
{
    if (!a)
        return b;
    if (!b)
        return a;
    return binExpr(BinOp::LAnd, a, b);
}

namespace {

/** Non-zero test, normalizing any width to a 1-bit condition. */
Expr
ne0(const Expr &e)
{
    if (e->width == 1)
        return e;
    return binExpr(BinOp::Ne, e, constExpr(0, e->width));
}

/** Collect BRAM reads in an expression, tracking mux-select gating. */
void
collectReads(const Expr &e, const Expr &cond, bool inside_while,
             std::vector<BramReadOcc> &out)
{
    if (!e)
        return;
    // Expressions are DAGs with heavy sharing; pruning read-free
    // subtrees keeps this walk linear in practice.
    if (!containsBramRead(e))
        return;
    switch (e->kind) {
      case ExprKind::BramRead:
        out.push_back(BramReadOcc{e->stateId, e->a, cond, inside_while});
        collectReads(e->a, cond, inside_while, out);
        return;
      case ExprKind::Mux:
        collectReads(e->c, cond, inside_while, out);
        collectReads(e->a, andCond(cond, ne0(e->c)), inside_while, out);
        collectReads(e->b, andCond(cond, unExpr(UnOp::LNot, ne0(e->c))),
                     inside_while, out);
        return;
      default:
        collectReads(e->a, cond, inside_while, out);
        collectReads(e->b, cond, inside_while, out);
        collectReads(e->c, cond, inside_while, out);
        return;
    }
}

class Flattener
{
  public:
    explicit Flattener(FlatProgram &out) : out_(out) {}

    void
    flattenBlock(const Block &block, const Expr &cond, bool inside_while)
    {
        for (const auto &stmt : block)
            flattenStmt(*stmt, cond, inside_while);
    }

  private:
    void
    flattenStmt(const Stmt &stmt, const Expr &cond, bool inside_while)
    {
        if (const auto *assign = std::get_if<AssignStmt>(&stmt.node)) {
            out_.assigns.push_back(
                FlatAssign{cond, inside_while, assign->target,
                           assign->value});
            collectReads(assign->value, cond, inside_while, out_.bramReads);
            if (assign->target.index) {
                collectReads(assign->target.index, cond, inside_while,
                             out_.bramReads);
            }
        } else if (const auto *emit = std::get_if<EmitStmt>(&stmt.node)) {
            out_.emits.push_back(FlatEmit{cond, inside_while, emit->value});
            collectReads(emit->value, cond, inside_while, out_.bramReads);
        } else if (const auto *if_stmt = std::get_if<IfStmt>(&stmt.node)) {
            // Arms are mutually exclusive in priority order: each arm's
            // condition is conjoined with the negation of all earlier arms.
            Expr not_earlier;
            for (const auto &[arm_cond, arm_block] : if_stmt->arms) {
                collectReads(arm_cond, andCond(cond, not_earlier),
                             inside_while, out_.bramReads);
                Expr taken = andCond(not_earlier, ne0(arm_cond));
                flattenBlock(arm_block, andCond(cond, taken), inside_while);
                not_earlier = andCond(
                    not_earlier, unExpr(UnOp::LNot, ne0(arm_cond)));
            }
            if (!if_stmt->elseBlock.empty()) {
                flattenBlock(if_stmt->elseBlock, andCond(cond, not_earlier),
                             inside_while);
            }
        } else if (const auto *wh = std::get_if<WhileStmt>(&stmt.node)) {
            if (inside_while)
                panic("flatten: nested while survived builder checks");
            collectReads(wh->cond, cond, inside_while, out_.bramReads);
            Expr eff = andCond(cond, ne0(wh->cond));
            out_.whileConds.push_back(eff);
            flattenBlock(wh->body, eff, true);
        } else {
            panic("flatten: unknown statement kind");
        }
    }

    FlatProgram &out_;
};

} // namespace

FlatProgram
flatten(const Program &program)
{
    FlatProgram out;
    Flattener flattener(out);
    flattener.flattenBlock(program.body, nullptr, false);
    return out;
}

} // namespace lang
} // namespace fleet
