#include "lang/stdlib.h"

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace lang {
namespace lib {

BitPacker::BitPacker(ProgramBuilder &b, const std::string &name,
                     int token_bits, int accum_bits)
    : b_(b), tokenBits_(token_bits), accumBits_(accum_bits),
      accum_(b.reg(name + "_accum", accum_bits, 0)),
      count_(b.reg(name + "_count",
                   bitsToRepresent(uint64_t(accum_bits)), 0))
{
    if (token_bits < 1 || token_bits > accum_bits)
        fatal("BitPacker ", name, ": token width out of range");
}

Value
BitPacker::hasToken() const
{
    return count_ >= uint64_t(tokenBits_);
}

Value
BitPacker::pending() const
{
    return count_ != 0;
}

void
BitPacker::push(const Value &value, const Value &bits)
{
    b_.assign(accum_,
              accum_ | (value.resize(accumBits_) << count_));
    b_.assign(count_, (count_ + bits.resize(count_.width()))
                          .resize(count_.width()));
}

void
BitPacker::pushFixed(const Value &value, int bits)
{
    if (bits < 0 || bits > accumBits_)
        fatal("BitPacker: pushFixed width out of range");
    push(value.resize(bits), Value::lit(uint64_t(bits),
                                        count_.width()));
}

void
BitPacker::emitToken()
{
    b_.emit(accum_.slice(tokenBits_ - 1, 0));
    b_.assign(accum_, accum_ >> Value::lit(uint64_t(tokenBits_),
                                           bitsToRepresent(
                                               uint64_t(tokenBits_))));
    b_.assign(count_, count_ - uint64_t(tokenBits_));
}

void
BitPacker::emitPadded()
{
    b_.emit(accum_.slice(tokenBits_ - 1, 0));
    clear();
}

void
BitPacker::clear()
{
    b_.assign(accum_, Value::lit(0, accumBits_));
    b_.assign(count_, Value::lit(0, count_.width()));
}

} // namespace lib
} // namespace lang
} // namespace fleet
