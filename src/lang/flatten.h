#ifndef FLEET_LANG_FLATTEN_H
#define FLEET_LANG_FLATTEN_H

/**
 * @file
 * Lowering of structured Fleet programs into flat (condition, action)
 * pairs, mirroring the compilation procedure of Section 4 of the paper:
 * nested `if` conditions become conjunctions, a `while` condition is
 * treated as an `if` condition for the statements in its body, and
 * statements outside all loops are gated by `while_done`.
 *
 * Conditions stored here do NOT yet include the `while_done` factor;
 * instead each action carries an `insideWhile` flag. Consumers (the
 * functional simulator and the compiler) combine `cond` with the
 * program-wide `while_done` signal exactly as the generated RTL does
 * (Figure 4, lines 17-18 and 33).
 */

#include <vector>

#include "lang/ast.h"

namespace fleet {
namespace lang {

/** A flattened assignment with its full `if`-path condition. */
struct FlatAssign
{
    Expr cond; ///< Null means unconditional (within its while class).
    bool insideWhile;
    LValue target;
    Expr value;
};

/** A flattened emit with its full `if`-path condition. */
struct FlatEmit
{
    Expr cond;
    bool insideWhile;
    Expr value;
};

/**
 * One syntactic BRAM read with the condition chain that gates it (its
 * `if` path plus any mux-select path inside expressions). Used for the
 * dependent-read static check and for building the single read-address
 * mux in the compiler.
 */
struct BramReadOcc
{
    int bramId;
    Expr addr;
    Expr cond; ///< Null means unconditional (within its while class).
    bool insideWhile;
};

struct FlatProgram
{
    /** Effective while conditions (conjoined with their `if` paths). */
    std::vector<Expr> whileConds;

    std::vector<FlatAssign> assigns;
    std::vector<FlatEmit> emits;
    std::vector<BramReadOcc> bramReads;
};

/** Conjoin two conditions where null means "true". */
Expr andCond(const Expr &a, const Expr &b);

/** Flatten a program (does not check restrictions; see lang/check.h). */
FlatProgram flatten(const Program &program);

} // namespace lang
} // namespace fleet

#endif // FLEET_LANG_FLATTEN_H
