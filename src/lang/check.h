#ifndef FLEET_LANG_CHECK_H
#define FLEET_LANG_CHECK_H

/**
 * @file
 * Static restriction checks for Fleet programs (Section 3 of the paper).
 * These reject the program shapes the compiler cannot schedule into the
 * two-stage virtual-cycle pipeline:
 *
 *  - dependent BRAM reads: a BRAM read address may not contain a BRAM
 *    read; and when a BRAM is read at more than one distinct address,
 *    neither the conditions gating its reads (if paths, mux selects) nor
 *    any while condition may contain a BRAM read — otherwise the read
 *    address for the next virtual cycle could not be supplied one cycle
 *    ahead. A BRAM with a single read address is issued unconditionally,
 *    so its gating conditions are unrestricted;
 *  - assignment values must not be wider than their targets (use
 *    Value::resize for explicit truncation); emits must match the output
 *    token width exactly.
 *
 * Multiplicity restrictions (at most one BRAM read address, one BRAM
 * write, one emit, one assignment per register or vector element per
 * virtual cycle) are data dependent and are enforced dynamically by the
 * functional simulator (sim/simulator.h), as in the paper.
 */

#include "lang/ast.h"

namespace fleet {
namespace lang {

/** Validate a program; throws FatalError on any violation. */
void checkProgram(const Program &program);

} // namespace lang
} // namespace fleet

#endif // FLEET_LANG_CHECK_H
