#include "lang/ast.h"

#include <atomic>
#include <sstream>

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace lang {

namespace {

Expr
makeNode(ExprNode node)
{
    if (node.width < 1 || node.width > kMaxValueWidth)
        fatal("expression width ", node.width, " out of range [1, ",
              kMaxValueWidth, "]");
    return std::make_shared<const ExprNode>(std::move(node));
}

} // namespace

Expr
constExpr(uint64_t value, int width)
{
    ExprNode n;
    n.kind = ExprKind::Const;
    n.width = width;
    n.value = truncTo(value, width);
    if (n.value != value)
        fatal("literal ", value, " does not fit in ", width, " bits");
    return makeNode(std::move(n));
}

Expr
inputExpr(int token_width)
{
    ExprNode n;
    n.kind = ExprKind::Input;
    n.width = token_width;
    return makeNode(std::move(n));
}

Expr
streamFinishedExpr()
{
    ExprNode n;
    n.kind = ExprKind::StreamFinished;
    n.width = 1;
    return makeNode(std::move(n));
}

Expr
regReadExpr(const RegDecl &reg)
{
    ExprNode n;
    n.kind = ExprKind::RegRead;
    n.width = reg.width;
    n.stateId = reg.id;
    return makeNode(std::move(n));
}

Expr
vecRegReadExpr(const VecRegDecl &vreg, Expr index)
{
    ExprNode n;
    n.kind = ExprKind::VecRegRead;
    n.width = vreg.width;
    n.stateId = vreg.id;
    n.a = std::move(index);
    return makeNode(std::move(n));
}

Expr
bramReadExpr(const BramDecl &bram, Expr addr)
{
    ExprNode n;
    n.kind = ExprKind::BramRead;
    n.width = bram.width;
    n.stateId = bram.id;
    n.a = std::move(addr);
    return makeNode(std::move(n));
}

Expr
binExpr(BinOp op, Expr a, Expr b)
{
    ExprNode n;
    n.kind = ExprKind::Bin;
    n.width = binOpWidth(op, a->width, b->width);
    n.binOp = op;
    n.a = std::move(a);
    n.b = std::move(b);
    return makeNode(std::move(n));
}

Expr
unExpr(UnOp op, Expr a)
{
    ExprNode n;
    n.kind = ExprKind::Un;
    n.width = unOpWidth(op, a->width);
    n.unOp = op;
    n.a = std::move(a);
    return makeNode(std::move(n));
}

Expr
muxExpr(Expr cond, Expr a, Expr b)
{
    if (a->width != b->width) {
        // Zero-extend the narrower leg so both legs agree (documented rule).
        int w = std::max(a->width, b->width);
        if (a->width < w)
            a = concatExpr(constExpr(0, w - a->width), a);
        if (b->width < w)
            b = concatExpr(constExpr(0, w - b->width), b);
    }
    ExprNode n;
    n.kind = ExprKind::Mux;
    n.width = a->width;
    n.a = std::move(a);
    n.b = std::move(b);
    n.c = std::move(cond);
    return makeNode(std::move(n));
}

Expr
sliceExpr(Expr a, int hi, int lo)
{
    if (lo < 0 || hi < lo || hi >= a->width)
        fatal("slice [", hi, ":", lo, "] out of range for width ", a->width);
    ExprNode n;
    n.kind = ExprKind::Slice;
    n.width = hi - lo + 1;
    n.sliceLo = lo;
    n.a = std::move(a);
    return makeNode(std::move(n));
}

Expr
concatExpr(Expr hi, Expr lo)
{
    if (hi->width + lo->width > kMaxValueWidth)
        fatal("concat width ", hi->width + lo->width, " exceeds ",
              kMaxValueWidth);
    ExprNode n;
    n.kind = ExprKind::Concat;
    n.width = hi->width + lo->width;
    n.a = std::move(hi);
    n.b = std::move(lo);
    return makeNode(std::move(n));
}

int64_t
exprEvalId(const ExprNode *node)
{
    // Simulators for independent units share AST nodes and may be
    // constructed concurrently (FleetSystem builds PUs on its worker
    // pool), so the lazy assignment must be atomic. Losers of the CAS
    // waste a counter value; ids only need to be unique and stable per
    // node, not dense.
    static std::atomic<int64_t> counter{0};
    std::atomic_ref<int64_t> id(node->evalId);
    int64_t v = id.load(std::memory_order_acquire);
    if (v >= 0)
        return v;
    int64_t fresh = counter.fetch_add(1);
    int64_t expected = -1;
    if (id.compare_exchange_strong(expected, fresh,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire))
        return fresh;
    return expected;
}

bool
exprEqual(const Expr &a, const Expr &b)
{
    if (a == b)
        return true;
    if (!a || !b)
        return false;
    if (a->kind != b->kind || a->width != b->width)
        return false;
    switch (a->kind) {
      case ExprKind::Const:
        return a->value == b->value;
      case ExprKind::Input:
      case ExprKind::StreamFinished:
        return true;
      case ExprKind::RegRead:
        return a->stateId == b->stateId;
      case ExprKind::VecRegRead:
      case ExprKind::BramRead:
        return a->stateId == b->stateId && exprEqual(a->a, b->a);
      case ExprKind::Bin:
        return a->binOp == b->binOp && exprEqual(a->a, b->a) &&
               exprEqual(a->b, b->b);
      case ExprKind::Un:
        return a->unOp == b->unOp && exprEqual(a->a, b->a);
      case ExprKind::Mux:
        return exprEqual(a->c, b->c) && exprEqual(a->a, b->a) &&
               exprEqual(a->b, b->b);
      case ExprKind::Slice:
        return a->sliceLo == b->sliceLo && exprEqual(a->a, b->a);
      case ExprKind::Concat:
        return exprEqual(a->a, b->a) && exprEqual(a->b, b->b);
    }
    return false;
}

bool
containsBramRead(const Expr &e)
{
    if (!e)
        return false;
    // Same sharing story as exprEvalId: nodes may be queried from
    // concurrent threads. The answer is deterministic, so racing
    // writers store the same value; atomics make that well-defined.
    std::atomic_ref<int8_t> memo(e->hasBramReadMemo);
    int8_t m = memo.load(std::memory_order_acquire);
    if (m >= 0)
        return m != 0;
    bool result;
    if (e->kind == ExprKind::BramRead) {
        result = true;
    } else {
        result = containsBramRead(e->a) || containsBramRead(e->b) ||
                 containsBramRead(e->c);
    }
    memo.store(result ? 1 : 0, std::memory_order_release);
    return result;
}

int
exprNodeCount(const Expr &e)
{
    if (!e)
        return 0;
    return 1 + exprNodeCount(e->a) + exprNodeCount(e->b) +
           exprNodeCount(e->c);
}

std::string
exprToString(const Expr &e)
{
    if (!e)
        return "<null>";
    std::ostringstream os;
    switch (e->kind) {
      case ExprKind::Const:
        os << e->value << "'" << e->width;
        break;
      case ExprKind::Input:
        os << "input";
        break;
      case ExprKind::StreamFinished:
        os << "stream_finished";
        break;
      case ExprKind::RegRead:
        os << "r" << e->stateId;
        break;
      case ExprKind::VecRegRead:
        os << "v" << e->stateId << "[" << exprToString(e->a) << "]";
        break;
      case ExprKind::BramRead:
        os << "m" << e->stateId << "[" << exprToString(e->a) << "]";
        break;
      case ExprKind::Bin:
        os << "(" << exprToString(e->a) << " " << binOpName(e->binOp) << " "
           << exprToString(e->b) << ")";
        break;
      case ExprKind::Un:
        os << unOpName(e->unOp) << exprToString(e->a);
        break;
      case ExprKind::Mux:
        os << "(" << exprToString(e->c) << " ? " << exprToString(e->a)
           << " : " << exprToString(e->b) << ")";
        break;
      case ExprKind::Slice:
        os << exprToString(e->a) << "[" << (e->sliceLo + e->width - 1) << ":"
           << e->sliceLo << "]";
        break;
      case ExprKind::Concat:
        os << "{" << exprToString(e->a) << ", " << exprToString(e->b) << "}";
        break;
    }
    return os.str();
}

} // namespace lang
} // namespace fleet
