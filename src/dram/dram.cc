#include "dram/dram.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace fleet {
namespace dram {

DramChannel::DramChannel(const DramParams &params, uint64_t mem_bytes,
                         const fault::ChannelFaults *faults)
    : params_(params), faults_(faults), mem_(mem_bytes, 0)
{
    if (params_.busWidthBits % 8 != 0 || params_.busWidthBits <= 0)
        fatal("DramChannel: bus width must be a positive multiple of 8");
}

uint64_t
DramChannel::skipRefresh(uint64_t cycle) const
{
    if (params_.refreshDuration == 0)
        return cycle;
    uint64_t pos = cycle % params_.refreshPeriod;
    if (pos < params_.refreshDuration)
        return cycle + (params_.refreshDuration - pos);
    return cycle;
}

uint64_t
DramChannel::scheduleBus(uint64_t earliest, int beats)
{
    uint64_t start = std::max(busNext_, earliest);
    overheadAcc_ += params_.perRequestOverhead;
    uint64_t extra = static_cast<uint64_t>(overheadAcc_);
    overheadAcc_ -= static_cast<double>(extra);
    start = skipRefresh(start + extra);

    // Walk the beats across any refresh windows to account bus time.
    uint64_t t = start;
    int remaining = beats;
    while (remaining > 0) {
        uint64_t pos = t % params_.refreshPeriod;
        uint64_t until_refresh = params_.refreshPeriod - pos;
        uint64_t chunk = std::min<uint64_t>(remaining, until_refresh);
        t += chunk;
        remaining -= static_cast<int>(chunk);
        if (remaining > 0)
            t = skipRefresh(t);
    }
    busNext_ = t;
    return start;
}

bool
DramChannel::arReady() const
{
    if (faults_ && faults_->busBackpressured(cycle_))
        return false; // Injected backpressure window: accept no AR.
    return readQueue_.size() <
           static_cast<size_t>(params_.maxOutstandingReads);
}

void
DramChannel::arPush(uint64_t addr, int len_beats)
{
    if (!arReady())
        panic("DramChannel: arPush without arReady");
    if (len_beats <= 0)
        panic("DramChannel: empty burst");
    if (addr % busWidthBytes() != 0)
        fatal("DramChannel: read address ", addr, " not beat-aligned");
    if (addr + uint64_t(len_beats) * busWidthBytes() > mem_.size())
        fatal("DramChannel: read burst past end of channel memory");
    uint64_t latency = params_.readLatency;
    if (faults_)
        latency += faults_->extraReadLatency(readRequests_);
    ++readRequests_;
    uint64_t first = scheduleBus(cycle_ + latency, len_beats);
    readQueue_.push_back(PendingRead{addr, len_beats, first});
}

bool
DramChannel::rValid() const
{
    if (readQueue_.empty())
        return false;
    const PendingRead &head = readQueue_.front();
    return cycle_ >= head.firstBeatCycle + headBeatsDelivered_;
}

const RBeat &
DramChannel::rPeek() const
{
    if (!rValid())
        panic("DramChannel: rPeek without rValid");
    const PendingRead &head = readQueue_.front();
    headBeat_.addr = head.addr +
                     uint64_t(headBeatsDelivered_) * busWidthBytes();
    headBeat_.last = headBeatsDelivered_ == head.lenBeats - 1;
    // Corruption is a pure function of the beat's delivery index, so
    // repeated rPeek() calls within a cycle agree.
    headBeat_.corrupted = faults_ && faults_->beatCorrupted(beatsDelivered_);
    headBeatValid_ = true;
    return headBeat_;
}

void
DramChannel::rPop()
{
    if (!rValid())
        panic("DramChannel: rPop without rValid");
    ++beatsDelivered_;
    ++headBeatsDelivered_;
    if (headBeatsDelivered_ == readQueue_.front().lenBeats) {
        readQueue_.pop_front();
        headBeatsDelivered_ = 0;
    }
}

bool
DramChannel::awReady() const
{
    if (faults_ && faults_->busBackpressured(cycle_))
        return false; // Injected backpressure window: accept no AW.
    return writeQueue_.size() <
           static_cast<size_t>(params_.maxOutstandingWrites);
}

void
DramChannel::awPush(uint64_t addr, int len_beats)
{
    if (!awReady())
        panic("DramChannel: awPush without awReady");
    if (addr % busWidthBytes() != 0)
        fatal("DramChannel: write address ", addr, " not beat-aligned");
    if (addr + uint64_t(len_beats) * busWidthBytes() > mem_.size())
        fatal("DramChannel: write burst past end of channel memory");
    ++writeRequests_;
    writeQueue_.push_back(PendingWrite{addr, len_beats, 0});
}

void
DramChannel::exportCounters(trace::CounterSet &out) const
{
    out.set("bus_width_bits", params_.busWidthBits);
    out.set("cycles", cycle_);
    out.set("beats_delivered", beatsDelivered_);
    out.set("beats_written", beatsWritten_);
    out.set("read_bursts_accepted", readRequests_);
    out.set("write_bursts_accepted", writeRequests_);
    out.set("bytes_read", beatsDelivered_ * busWidthBytes());
    out.set("bytes_written", beatsWritten_ * busWidthBytes());
}

bool
DramChannel::wReady() const
{
    // Beats fill bursts in AW order; ready while any burst is incomplete.
    for (const auto &write : writeQueue_)
        if (write.beatsReceived < write.lenBeats)
            return true;
    return false;
}

void
DramChannel::wPush(const uint8_t *beat_data)
{
    for (auto &write : writeQueue_) {
        if (write.beatsReceived < write.lenBeats) {
            uint64_t addr = write.addr +
                            uint64_t(write.beatsReceived) * busWidthBytes();
            std::memcpy(mem_.data() + addr, beat_data, busWidthBytes());
            ++write.beatsReceived;
            ++beatsWritten_;
            if (write.beatsReceived == write.lenBeats) {
                // Burst complete: claim bus time (contends with reads).
                scheduleBus(cycle_, write.lenBeats);
                // Completed bursts at the queue head retire.
                while (!writeQueue_.empty() &&
                       writeQueue_.front().beatsReceived ==
                           writeQueue_.front().lenBeats) {
                    writeQueue_.pop_front();
                }
            }
            return;
        }
    }
    panic("DramChannel: wPush without wReady");
}

void
DramChannel::tick()
{
    ++cycle_;
}

} // namespace dram
} // namespace fleet
