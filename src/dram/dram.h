#ifndef FLEET_DRAM_DRAM_H
#define FLEET_DRAM_DRAM_H

/**
 * @file
 * Cycle-level model of one AXI4 memory channel backed by DRAM, standing in
 * for the Amazon F1's DDR3 channels (the paper uses four channels with
 * 512-bit data buses at 125 MHz; Section 5). The model exposes the
 * behaviours the Fleet memory controller's optimizations exploit:
 *
 *  - a long read latency from address acceptance to first data beat
 *    (motivating asynchronous address supply, Figure 9);
 *  - read data returned in address order, one 512-bit beat per cycle at
 *    most (motivating burst registers to keep the bus saturated);
 *  - a small amortized per-request overhead plus periodic refresh, so
 *    larger bursts achieve higher efficiency (Section 5's burst-size
 *    tradeoff; calibrated so a 64-beat-burst raw read sustains ~94% of
 *    the theoretical peak, matching the paper's 30.1 of 32 GB/s).
 *
 * Reads and writes share the DRAM data bus, so echo-style workloads see
 * roughly half the unidirectional bandwidth (Section 7.3's 11.38 GB/s).
 *
 * The channel owns its (simulated) memory contents; the host runtime
 * fills input regions and reads back output regions between runs.
 */

#include <cstdint>
#include <deque>
#include <vector>

#include "fault/fault.h"
#include "trace/trace.h"

namespace fleet {
namespace dram {

struct DramParams
{
    /** AXI data bus width. One beat per cycle maximum. */
    int busWidthBits = 512;
    /** Cycles from AR acceptance to the first beat becoming available. */
    uint64_t readLatency = 62;
    /** Amortized extra bus cycles per request (command/bank overhead). */
    double perRequestOverhead = 0.22;
    /** Every refreshPeriod cycles the bus blocks for refreshDuration. */
    uint64_t refreshPeriod = 975;
    uint64_t refreshDuration = 55;
    /** Maximum accepted-but-undelivered read requests. */
    int maxOutstandingReads = 64;
    /** Maximum buffered write bursts awaiting bus time. */
    int maxOutstandingWrites = 16;
};

/** One 512-bit read-data beat (data is read via DramChannel::memory()). */
struct RBeat
{
    uint64_t addr;          ///< Byte address of this beat.
    bool last;              ///< Final beat of its burst.
    bool corrupted = false; ///< Injected single-bit error (fault layer);
                            ///< caught by the controller's parity check.
};

class DramChannel
{
  public:
    /**
     * `faults` (optional, not owned, may be null) injects read latency
     * spikes, address-channel backpressure windows, and corrupted read
     * beats; see fault/fault.h. A null injector is never consulted, so
     * fault-free timing is bit-identical with or without the layer.
     */
    DramChannel(const DramParams &params, uint64_t mem_bytes,
                const fault::ChannelFaults *faults = nullptr);

    /// @name Host access to channel memory (zero simulated cost).
    /// @{
    std::vector<uint8_t> &memory() { return mem_; }
    const std::vector<uint8_t> &memory() const { return mem_; }
    /// @}

    /// @name Read address channel.
    /// @{
    bool arReady() const;
    void arPush(uint64_t addr, int len_beats);
    /// @}

    /// @name Read data channel (at most one beat popped per cycle).
    /// @{
    bool rValid() const;
    const RBeat &rPeek() const;
    void rPop();
    /// @}

    /// @name Write address/data channels. Beats follow AW order; a burst's
    /// data commits to memory as its beats are pushed.
    /// @{
    bool awReady() const;
    void awPush(uint64_t addr, int len_beats);
    bool wReady() const;
    void wPush(const uint8_t *beat_data);
    /// @}

    /** Advance one cycle. */
    void tick();

    uint64_t cycle() const { return cycle_; }
    int busWidthBytes() const { return params_.busWidthBits / 8; }

    /// @name Statistics.
    /// @{
    uint64_t beatsDelivered() const { return beatsDelivered_; }
    uint64_t beatsWritten() const { return beatsWritten_; }
    /** Accepted-but-undelivered read requests (queue occupancy). */
    int outstandingReads() const
    {
        return static_cast<int>(readQueue_.size());
    }
    /** Buffered write bursts awaiting bus time (queue occupancy). */
    int outstandingWrites() const
    {
        return static_cast<int>(writeQueue_.size());
    }
    /** Read bursts accepted on the AR channel. */
    uint64_t readRequests() const { return readRequests_; }
    /** Write bursts accepted on the AW channel. */
    uint64_t writeRequests() const { return writeRequests_; }
    /** Dump the channel's native counters into `out` (trace layer). */
    void exportCounters(trace::CounterSet &out) const;
    /// @}

  private:
    struct PendingRead
    {
        uint64_t addr;
        int lenBeats;
        uint64_t firstBeatCycle; ///< When the first beat becomes available.
    };
    struct PendingWrite
    {
        uint64_t addr;
        int lenBeats;
        int beatsReceived;
    };

    /** Advance a candidate cycle past any refresh window. */
    uint64_t skipRefresh(uint64_t cycle) const;
    /** Claim `beats` bus cycles starting no earlier than `earliest`. */
    uint64_t scheduleBus(uint64_t earliest, int beats);

    DramParams params_;
    const fault::ChannelFaults *faults_;
    std::vector<uint8_t> mem_;
    uint64_t cycle_ = 0;
    uint64_t readRequests_ = 0;  ///< ARs accepted (fault-event index).
    uint64_t writeRequests_ = 0; ///< AWs accepted.

    uint64_t busNext_ = 0;      ///< First cycle the data bus is free.
    double overheadAcc_ = 0.0;  ///< Fractional per-request overhead.

    std::deque<PendingRead> readQueue_; ///< Accepted, undelivered reads.
    int headBeatsDelivered_ = 0;
    mutable RBeat headBeat_{0, false};
    mutable bool headBeatValid_ = false;

    std::deque<PendingWrite> writeQueue_;

    uint64_t beatsDelivered_ = 0;
    uint64_t beatsWritten_ = 0;
};

} // namespace dram
} // namespace fleet

#endif // FLEET_DRAM_DRAM_H
