#include "model/power.h"

namespace fleet {
namespace model {

double
fpgaPackagePower(const PowerParams &params, const Resources &per_pu,
                 int pus, const Resources &controllers)
{
    auto dynamic = [&](const Resources &res) {
        return params.activity *
               (res.luts * params.wPerLut + res.ffs * params.wPerFf +
                res.bram36 * params.wPerBram36 + res.dsps * params.wPerDsp);
    };
    return params.fpgaStaticW + dynamic(controllers) +
           pus * dynamic(per_pu);
}

} // namespace model
} // namespace fleet
