#ifndef FLEET_MODEL_POWER_H
#define FLEET_MODEL_POWER_H

/**
 * @file
 * Power model for the performance-per-watt columns of Figure 7. The paper
 * itself models DRAM power as a constant 12.5 W on every platform (its
 * F1 tools reported only package power); this reproduction extends the
 * same style to the packages:
 *
 *  - FPGA package = static power + per-PU dynamic power proportional to
 *    estimated resources, calibrated so that full-chip designs land in
 *    the paper's observed 15-21 W range;
 *  - CPU and GPU package powers are fixed platform constants derived
 *    from the paper's own reported perf and perf/W (about 200 W and
 *    180 W respectively).
 */

#include "model/device.h"

namespace fleet {
namespace model {

struct PowerParams
{
    double fpgaStaticW = 7.0;
    /** Dynamic power per resource at 125 MHz (W per unit), calibrated so
     * full-chip designs land in the paper's observed 15-21 W package
     * range. */
    double wPerLut = 2.0e-5;
    double wPerFf = 5.0e-6;
    double wPerBram36 = 2.5e-3;
    double wPerDsp = 1.5e-3;
    /** Average toggle/activity factor for streaming designs. */
    double activity = 0.35;

    double dramW = 12.5; ///< The paper's constant.
    double cpuPackageW = 200.0;
    double gpuPackageW = 180.0;
};

/** FPGA package power for a design with `pus` copies of a PU. */
double fpgaPackagePower(const PowerParams &params, const Resources &per_pu,
                        int pus, const Resources &controllers);

} // namespace model
} // namespace fleet

#endif // FLEET_MODEL_POWER_H
