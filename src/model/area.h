#ifndef FLEET_MODEL_AREA_H
#define FLEET_MODEL_AREA_H

/**
 * @file
 * Area model: estimates FPGA resources for a compiled processing unit and
 * computes how many copies fit on a device next to the Fleet memory
 * controllers — the "# PUs" column of the paper's Figure 7. Synthesis is
 * unavailable in this reproduction, so LUT counts use standard per-node
 * heuristics (documented on estimateNode in area.cc) and are calibrated
 * only in aggregate; the per-application *relative* capacities are what
 * the model is expected to preserve.
 */

#include "memctl/params.h"
#include "model/device.h"
#include "rtl/circuit.h"

namespace fleet {
namespace model {

/** Estimated resources of one compiled processing unit, including its
 * input/output stream buffers. */
Resources estimatePuResources(const rtl::Circuit &circuit,
                              const memctl::ControllerParams &ctrl);

/** Estimated resources of one channel's input+output controllers. */
Resources estimateControllerResources(const memctl::ControllerParams &ctrl,
                                      int bus_width_bits = 512);

/** Maximum processing units that fit on the device (rounded down to a
 * multiple of the channel count, as units are divided among channels). */
int maxProcessingUnits(const Device &device, const Resources &per_pu,
                       const memctl::ControllerParams &ctrl);

} // namespace model
} // namespace fleet

#endif // FLEET_MODEL_AREA_H
