#ifndef FLEET_MODEL_DEVICE_H
#define FLEET_MODEL_DEVICE_H

/**
 * @file
 * FPGA device description for the area model. Defaults describe a
 * vu9p-class card as deployed in the Amazon F1 (paper, Section 7),
 * including the fraction of the fabric consumed by the cloud shell and
 * the per-channel Fleet memory controllers (Section 5 reports the input
 * and output controllers together take about a tenth of the F1's logic
 * at burst size 1024).
 */

#include <cstdint>

namespace fleet {
namespace model {

struct Device
{
    const char *name = "vu9p (Amazon F1)";
    uint64_t luts = 1182240;
    uint64_t ffs = 2364480;
    uint64_t bram36 = 2160;
    uint64_t dsps = 6840;

    /** Fraction of each resource reserved by the F1 shell. */
    double shellFraction = 0.18;

    int memoryChannels = 4;
    double clockMHz = 125.0;
};

/** Resource bundle used by the area model. */
struct Resources
{
    uint64_t luts = 0;
    uint64_t ffs = 0;
    uint64_t bram36 = 0;
    uint64_t dsps = 0;

    Resources &
    operator+=(const Resources &other)
    {
        luts += other.luts;
        ffs += other.ffs;
        bram36 += other.bram36;
        dsps += other.dsps;
        return *this;
    }
};

} // namespace model
} // namespace fleet

#endif // FLEET_MODEL_DEVICE_H
