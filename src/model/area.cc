#include "model/area.h"

#include <algorithm>

#include "util/bits.h"

namespace fleet {
namespace model {

namespace {

/** BRAM36 blocks needed for an elements x width memory: pick the best of
 * the standard aspect ratios (512x72 down to 32Kx1). */
uint64_t
bram36Blocks(uint64_t elements, uint64_t width)
{
    struct Aspect
    {
        uint64_t depth, width;
    };
    static const Aspect kAspects[] = {{512, 72},   {1024, 36}, {2048, 18},
                                      {4096, 9},   {8192, 4},  {16384, 2},
                                      {32768, 1}};
    uint64_t best = ~0ull;
    for (const auto &aspect : kAspects) {
        uint64_t blocks = ceilDiv(elements, aspect.depth) *
                          ceilDiv(width, aspect.width);
        best = std::min(best, blocks);
    }
    return best;
}

/** Per-node LUT estimate: the standard rough costs used by hand
 * estimation (carry chains cost ~1 LUT/bit, comparators ~bit/2, dynamic
 * shifts a log-depth mux tree, wiring-only ops are free). */
uint64_t
estimateNode(const rtl::Circuit &c, const rtl::Node &n)
{
    auto width = [&](rtl::NodeId id) {
        return uint64_t(c.nodes()[id].width);
    };
    switch (n.kind) {
      case rtl::NodeKind::Bin:
        switch (n.binOp) {
          case BinOp::Add:
          case BinOp::Sub:
            return uint64_t(n.width);
          case BinOp::Mul:
            // Constant-coefficient multipliers synthesize to shift-add
            // LUT networks (~1 LUT/output bit after truncation trimming);
            // variable x variable maps to DSPs (counted separately).
            if (c.nodes()[n.a].kind == rtl::NodeKind::Const ||
                c.nodes()[n.b].kind == rtl::NodeKind::Const) {
                return uint64_t(n.width);
            }
            return uint64_t(0);
          case BinOp::And:
          case BinOp::Or:
          case BinOp::Xor:
            return uint64_t(n.width) / 2 + 1;
          case BinOp::Shl:
          case BinOp::Shr: {
            // Barrel shifter: width x log2(width) mux levels; constant
            // shift amounts are wiring only.
            if (c.nodes()[n.b].kind == rtl::NodeKind::Const)
                return uint64_t(0);
            uint64_t levels = bitsToRepresent(width(n.a) - 1);
            return uint64_t(n.width) * levels / 2;
          }
          case BinOp::Eq:
          case BinOp::Ne:
          case BinOp::Ult:
          case BinOp::Ule:
          case BinOp::Ugt:
          case BinOp::Uge:
          case BinOp::Slt:
          case BinOp::Sle:
          case BinOp::Sgt:
          case BinOp::Sge:
            return std::max(width(n.a), width(n.b)) / 2 + 1;
          case BinOp::LAnd:
          case BinOp::LOr:
            return uint64_t(1);
        }
        return uint64_t(1);
      case rtl::NodeKind::Un:
        return n.unOp == UnOp::Neg ? uint64_t(n.width)
                                   : uint64_t(n.width) / 4 + 1;
      case rtl::NodeKind::Mux:
        return uint64_t(n.width) / 2 + 1;
      default:
        return uint64_t(0); // Const/Input/RegOut/rd-data/Slice/Concat.
    }
}

} // namespace

Resources
estimatePuResources(const rtl::Circuit &circuit,
                    const memctl::ControllerParams &ctrl)
{
    Resources res;
    for (const auto &node : circuit.nodes()) {
        res.luts += estimateNode(circuit, node);
        if (node.kind == rtl::NodeKind::Bin && node.binOp == BinOp::Mul &&
            circuit.nodes()[node.a].kind != rtl::NodeKind::Const &&
            circuit.nodes()[node.b].kind != rtl::NodeKind::Const) {
            uint64_t wa = circuit.nodes()[node.a].width;
            uint64_t wb = circuit.nodes()[node.b].width;
            res.dsps += ceilDiv(wa, 18) * ceilDiv(wb, 25);
        }
    }
    for (const auto &reg : circuit.regs()) {
        res.ffs += reg.width;
        // Clock-enable + next-value steering.
        res.luts += uint64_t(reg.width) / 2;
    }
    for (const auto &bram : circuit.brams())
        res.bram36 += bram36Blocks(bram.elements, bram.width);

    // Stream buffers: one input and one output FIFO of one burst each,
    // with w-bit ports (Section 5), plus their pointer/handshake logic.
    res.bram36 += 2 * bram36Blocks(ctrl.burstBits / ctrl.portWidth,
                                   ctrl.portWidth);
    res.luts += 160;
    res.ffs += 120;
    return res;
}

Resources
estimateControllerResources(const memctl::ControllerParams &ctrl,
                            int bus_width_bits)
{
    Resources res;
    // Burst registers dominate: r registers of burstBits for each of the
    // input and output controllers, plus distribution muxes from the bus.
    uint64_t burst_reg_ffs = uint64_t(ctrl.numBurstRegs) * ctrl.burstBits;
    res.ffs += 2 * burst_reg_ffs;
    res.luts += 2 * (burst_reg_ffs / 2 + uint64_t(bus_width_bits) * 8);
    // Addressing units, order queues, credit tracking.
    res.ffs += 4096;
    res.luts += 6144;
    return res;
}

int
maxProcessingUnits(const Device &device, const Resources &per_pu,
                   const memctl::ControllerParams &ctrl)
{
    Resources ctrl_res = estimateControllerResources(ctrl);
    auto available = [&](uint64_t total, uint64_t ctrl_use) {
        uint64_t shell = uint64_t(total * device.shellFraction);
        uint64_t ctrl_total = ctrl_use * device.memoryChannels;
        return total > shell + ctrl_total ? total - shell - ctrl_total : 0;
    };

    uint64_t by_lut = per_pu.luts
                          ? available(device.luts, ctrl_res.luts) /
                                per_pu.luts
                          : ~0ull;
    uint64_t by_ff = per_pu.ffs
                         ? available(device.ffs, ctrl_res.ffs) / per_pu.ffs
                         : ~0ull;
    uint64_t by_bram = per_pu.bram36 ? available(device.bram36, 0) /
                                           per_pu.bram36
                                     : ~0ull;
    uint64_t by_dsp = per_pu.dsps ? available(device.dsps, 0) / per_pu.dsps
                                  : ~0ull;

    uint64_t fit = std::min(std::min(by_lut, by_ff),
                            std::min(by_bram, by_dsp));
    // Divided evenly among channels.
    fit = fit / device.memoryChannels * device.memoryChannels;
    return static_cast<int>(std::min<uint64_t>(fit, 4096));
}

} // namespace model
} // namespace fleet
