#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace fleet {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    if (rows_.empty())
        panic("Table::cell called before row()");
    if (rows_.back().size() >= headers_.size())
        panic("Table row has more cells than headers");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(const char *value)
{
    return cell(std::string(value));
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return cell(os.str());
}

Table &
Table::cell(uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (size_t c = 0; c < headers_.size(); ++c) {
            std::string value = c < cells.size() ? cells[c] : "";
            os << " " << value << std::string(widths[c] - value.size(), ' ')
               << " |";
        }
        os << "\n";
    };

    print_row(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
Table::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace fleet
