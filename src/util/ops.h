#ifndef FLEET_UTIL_OPS_H
#define FLEET_UTIL_OPS_H

/**
 * @file
 * Operator kinds and their width/value semantics, shared by the Fleet
 * language AST, the functional simulator, and the RTL interpreter so all
 * three layers agree bit-for-bit.
 *
 * Width rules (documented in the language reference in README.md):
 *   - Add/Sub/And/Or/Xor: result width = max(wa, wb), modular.
 *   - Mul: result width = min(64, wa + wb).
 *   - Shl/Shr: result width = wa; shift amount is the unsigned value of b.
 *   - Comparisons and logical ops: result width = 1. Unsigned comparisons
 *     zero-extend; signed comparisons sign-extend each operand at its own
 *     width.
 */

#include <cstdint>

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {

enum class BinOp
{
    Add, Sub, Mul,
    And, Or, Xor,
    Shl, Shr,
    Eq, Ne,
    Ult, Ule, Ugt, Uge,
    Slt, Sle, Sgt, Sge,
    LAnd, LOr,
};

enum class UnOp
{
    Not,  ///< Bitwise complement; width preserved.
    LNot, ///< Logical not (== 0); width 1.
    Neg,  ///< Two's-complement negation; width preserved.
};

/** Result width of a binary operator applied to widths wa and wb. */
constexpr int
binOpWidth(BinOp op, int wa, int wb)
{
    switch (op) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::And:
      case BinOp::Or:
      case BinOp::Xor:
        return wa > wb ? wa : wb;
      case BinOp::Mul:
        return wa + wb > kMaxValueWidth ? kMaxValueWidth : wa + wb;
      case BinOp::Shl:
      case BinOp::Shr:
        return wa;
      default:
        return 1;
    }
}

/** Result width of a unary operator applied to width wa. */
constexpr int
unOpWidth(UnOp op, int wa)
{
    return op == UnOp::LNot ? 1 : wa;
}

/** Evaluate a binary operator. Operands must already be masked. */
inline uint64_t
evalBinOp(BinOp op, uint64_t a, int wa, uint64_t b, int wb)
{
    int w = binOpWidth(op, wa, wb);
    switch (op) {
      case BinOp::Add: return truncTo(a + b, w);
      case BinOp::Sub: return truncTo(a - b, w);
      case BinOp::Mul: return truncTo(a * b, w);
      case BinOp::And: return a & b;
      case BinOp::Or:  return a | b;
      case BinOp::Xor: return a ^ b;
      case BinOp::Shl: return b >= uint64_t(w) ? 0 : truncTo(a << b, w);
      case BinOp::Shr: return b >= 64 ? 0 : truncTo(a >> b, w);
      case BinOp::Eq:  return a == b;
      case BinOp::Ne:  return a != b;
      case BinOp::Ult: return a < b;
      case BinOp::Ule: return a <= b;
      case BinOp::Ugt: return a > b;
      case BinOp::Uge: return a >= b;
      case BinOp::Slt: return signExtend64(a, wa) < signExtend64(b, wb);
      case BinOp::Sle: return signExtend64(a, wa) <= signExtend64(b, wb);
      case BinOp::Sgt: return signExtend64(a, wa) > signExtend64(b, wb);
      case BinOp::Sge: return signExtend64(a, wa) >= signExtend64(b, wb);
      case BinOp::LAnd: return (a != 0) && (b != 0);
      case BinOp::LOr:  return (a != 0) || (b != 0);
    }
    panic("evalBinOp: unknown op");
}

/** Evaluate a unary operator. Operand must already be masked. */
inline uint64_t
evalUnOp(UnOp op, uint64_t a, int wa)
{
    switch (op) {
      case UnOp::Not:  return truncTo(~a, wa);
      case UnOp::LNot: return a == 0;
      case UnOp::Neg:  return truncTo(~a + 1, wa);
    }
    panic("evalUnOp: unknown op");
}

/** Human-readable operator spelling (for dumps and the Verilog emitter). */
const char *binOpName(BinOp op);
const char *unOpName(UnOp op);

} // namespace fleet

#endif // FLEET_UTIL_OPS_H
