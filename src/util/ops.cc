#include "util/ops.h"

namespace fleet {

const char *
binOpName(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "+";
      case BinOp::Sub: return "-";
      case BinOp::Mul: return "*";
      case BinOp::And: return "&";
      case BinOp::Or:  return "|";
      case BinOp::Xor: return "^";
      case BinOp::Shl: return "<<";
      case BinOp::Shr: return ">>";
      case BinOp::Eq:  return "==";
      case BinOp::Ne:  return "!=";
      case BinOp::Ult: return "<";
      case BinOp::Ule: return "<=";
      case BinOp::Ugt: return ">";
      case BinOp::Uge: return ">=";
      case BinOp::Slt: return "<s";
      case BinOp::Sle: return "<=s";
      case BinOp::Sgt: return ">s";
      case BinOp::Sge: return ">=s";
      case BinOp::LAnd: return "&&";
      case BinOp::LOr:  return "||";
    }
    return "?";
}

const char *
unOpName(UnOp op)
{
    switch (op) {
      case UnOp::Not:  return "~";
      case UnOp::LNot: return "!";
      case UnOp::Neg:  return "-";
    }
    return "?";
}

} // namespace fleet
