#ifndef FLEET_UTIL_BITBUF_H
#define FLEET_UTIL_BITBUF_H

/**
 * @file
 * A growable, bit-addressed buffer. Fleet streams are bit streams: input
 * buffers hold tokens of arbitrary width packed back to back, the memory
 * controllers move w-bit chunks, and the AXI model moves 512-bit beats.
 * BitBuffer is the single representation used across those layers.
 *
 * Bit order is little-endian within the underlying 64-bit words: bit i of
 * the stream is bit (i % 64) of word (i / 64). A token appended with
 * appendBits() is later read back by readBits() at the same offset.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace fleet {

class BitBuffer
{
  public:
    BitBuffer() = default;

    /** Create a zero-filled buffer of the given bit length. */
    explicit BitBuffer(uint64_t size_bits);

    /** Wrap a byte string: byte i occupies bits [8i, 8i+8). */
    static BitBuffer fromBytes(const void *data, size_t size_bytes);
    static BitBuffer fromString(const std::string &s);

    /** Number of valid bits in the buffer. */
    uint64_t sizeBits() const { return sizeBits_; }

    /** True if the buffer holds no bits. */
    bool empty() const { return sizeBits_ == 0; }

    /** Append the low `width` bits of `value` (0 <= width <= 64). */
    void appendBits(uint64_t value, int width);

    /** Append all bits of another buffer. */
    void appendBuffer(const BitBuffer &other);

    /**
     * Read `width` bits starting at `bit_offset`. Reading past the end is
     * an error except that up to `width` bits of zero padding are allowed
     * when `allow_pad` is set (used by the memory controller, which moves
     * data in fixed-size chunks past the logical end of a stream).
     */
    uint64_t readBits(uint64_t bit_offset, int width, bool allow_pad = false)
        const;

    /** Overwrite `width` bits at `bit_offset` (must be within size). */
    void writeBits(uint64_t bit_offset, uint64_t value, int width);

    /** Grow (zero-filled) or shrink to the given bit length. */
    void resizeBits(uint64_t size_bits);

    /** Pad with zero bits up to the next multiple of `align_bits`. */
    void padToMultipleOf(uint64_t align_bits);

    /** Copy out to a byte vector (final partial byte zero-padded). */
    std::vector<uint8_t> toBytes() const;

    /** Interpret the whole buffer as a string of 8-bit characters. */
    std::string toString() const;

    bool operator==(const BitBuffer &other) const;

  private:
    std::vector<uint64_t> words_;
    uint64_t sizeBits_ = 0;

    void ensureCapacity(uint64_t size_bits);
};

} // namespace fleet

#endif // FLEET_UTIL_BITBUF_H
