#include "util/status.h"

namespace fleet {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok:
        return "Ok";
    case StatusCode::StreamTruncated:
        return "StreamTruncated";
    case StatusCode::OutputOverflow:
        return "OutputOverflow";
    case StatusCode::ParityError:
        return "ParityError";
    case StatusCode::WatchdogStall:
        return "WatchdogStall";
    case StatusCode::CycleLimitExceeded:
        return "CycleLimitExceeded";
    case StatusCode::InternalError:
        return "InternalError";
    case StatusCode::InvalidArgument:
        return "InvalidArgument";
    case StatusCode::IoError:
        return "IoError";
    case StatusCode::InvalidState:
        return "InvalidState";
    case StatusCode::ResourceExhausted:
        return "ResourceExhausted";
    case StatusCode::Shed:
        return "Shed";
    case StatusCode::Cancelled:
        return "Cancelled";
    case StatusCode::DeadlineExceeded:
        return "DeadlineExceeded";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    std::string out = "[";
    out += statusCodeName(code);
    out += "]";
    if (!message.empty()) {
        out += " ";
        out += message;
    }
    return out;
}

} // namespace fleet
