#include "util/loc.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace fleet {

int
countCodeLines(const std::string &source)
{
    int count = 0;
    bool in_block_comment = false;
    bool line_has_code = false;
    size_t i = 0;
    size_t n = source.size();

    auto end_line = [&]() {
        if (line_has_code)
            ++count;
        line_has_code = false;
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            end_line();
            ++i;
            continue;
        }
        if (in_block_comment) {
            if (c == '*' && i + 1 < n && source[i + 1] == '/') {
                in_block_comment = false;
                i += 2;
            } else {
                ++i;
            }
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            // Skip to end of line.
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            in_block_comment = true;
            i += 2;
            continue;
        }
        if (c == '"') {
            // String literal: consume so comment markers inside it are
            // not misinterpreted.
            line_has_code = true;
            ++i;
            while (i < n && source[i] != '"' && source[i] != '\n') {
                if (source[i] == '\\' && i + 1 < n)
                    ++i;
                ++i;
            }
            if (i < n && source[i] == '"')
                ++i;
            continue;
        }
        if (!std::isspace(static_cast<unsigned char>(c)))
            line_has_code = true;
        ++i;
    }
    end_line();
    return count;
}

int
countCodeLinesInFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("countCodeLinesInFile: cannot open ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return countCodeLines(ss.str());
}

int
countCodeLinesInFiles(const std::vector<std::string> &paths)
{
    int total = 0;
    for (const auto &path : paths)
        total += countCodeLinesInFile(path);
    return total;
}

int
countRegionLines(const std::string &path, const std::string &marker)
{
    std::ifstream in(path);
    if (!in)
        fatal("countRegionLines: cannot open ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string source = ss.str();

    size_t at = source.find(marker);
    if (at == std::string::npos)
        fatal("countRegionLines: marker '", marker, "' not found in ",
              path);
    size_t open = source.find('{', at);
    if (open == std::string::npos)
        fatal("countRegionLines: no '{' after marker in ", path);

    // Walk to the matching close brace, skipping strings, chars, and
    // comments.
    int depth = 0;
    size_t i = open;
    size_t end = std::string::npos;
    bool in_line_comment = false, in_block_comment = false;
    char in_quote = 0;
    for (; i < source.size(); ++i) {
        char c = source[i];
        if (in_line_comment) {
            if (c == '\n')
                in_line_comment = false;
            continue;
        }
        if (in_block_comment) {
            if (c == '*' && i + 1 < source.size() && source[i + 1] == '/') {
                in_block_comment = false;
                ++i;
            }
            continue;
        }
        if (in_quote) {
            if (c == '\\')
                ++i;
            else if (c == in_quote)
                in_quote = 0;
            continue;
        }
        if (c == '/' && i + 1 < source.size()) {
            if (source[i + 1] == '/') {
                in_line_comment = true;
                continue;
            }
            if (source[i + 1] == '*') {
                in_block_comment = true;
                continue;
            }
        }
        if (c == '"' || c == '\'') {
            in_quote = c;
            continue;
        }
        if (c == '{')
            ++depth;
        if (c == '}') {
            if (--depth == 0) {
                end = i;
                break;
            }
        }
    }
    if (end == std::string::npos)
        fatal("countRegionLines: unbalanced braces after marker in ", path);
    return countCodeLines(source.substr(open, end - open + 1));
}

} // namespace fleet
