#ifndef FLEET_UTIL_LOGGING_H
#define FLEET_UTIL_LOGGING_H

/**
 * @file
 * Error-reporting helpers in the gem5 style. `panic` is for internal
 * invariant violations (framework bugs); `fatal` is for user errors such
 * as a Fleet program that violates the language restrictions; `warn` and
 * `inform` print status without stopping.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace fleet {

/** Thrown by fatal(): a user-level error (bad program or configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic(): an internal framework invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

void logMessage(const char *level, const std::string &msg);

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/** Report an unrecoverable user error (bad program/config). Throws. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::formatAll(args...));
}

/** Report an internal invariant violation (framework bug). Throws. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::formatAll(args...));
}

/** Print a warning to stderr and continue. */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::logMessage("warn", detail::formatAll(args...));
}

/** Print a status message to stderr and continue. */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::logMessage("info", detail::formatAll(args...));
}

} // namespace fleet

#endif // FLEET_UTIL_LOGGING_H
