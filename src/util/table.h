#ifndef FLEET_UTIL_TABLE_H
#define FLEET_UTIL_TABLE_H

/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to reproduce the
 * paper's tables (Figures 7, 8, and 9 and the Section 7.3/7.4 numbers) in a
 * uniform format.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace fleet {

class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);
    Table &cell(const char *value);

    /** Append a numeric cell with fixed precision. */
    Table &cell(double value, int precision = 2);
    Table &cell(uint64_t value);
    Table &cell(int value);

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fleet

#endif // FLEET_UTIL_TABLE_H
