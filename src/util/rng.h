#ifndef FLEET_UTIL_RNG_H
#define FLEET_UTIL_RNG_H

/**
 * @file
 * Deterministic pseudo-random number generator (SplitMix64) used by the
 * workload generators, the random-program property tests, and the DRAM
 * model. Deterministic across platforms so tests and benchmarks are
 * reproducible, unlike std::mt19937 distributions.
 */

#include <cstdint>

namespace fleet {

class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    /** Next 64 uniformly random bits. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    nextInRange(uint64_t lo, uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

    /** Bernoulli trial with probability num/den. */
    bool
    nextChance(uint64_t num, uint64_t den)
    {
        return nextBelow(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / (uint64_t(1) << 53));
    }

  private:
    uint64_t state_;
};

} // namespace fleet

#endif // FLEET_UTIL_RNG_H
