#include "util/logging.h"

#include <iostream>

namespace fleet {
namespace detail {

void
logMessage(const char *level, const std::string &msg)
{
    std::cerr << level << ": " << msg << std::endl;
}

} // namespace detail
} // namespace fleet
