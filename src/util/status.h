#ifndef FLEET_UTIL_STATUS_H
#define FLEET_UTIL_STATUS_H

/**
 * @file
 * Structured error model for the runtime (ISSUE 2). The original failure
 * model was process-wide: any `fatal()` from a controller unwound the
 * whole simulation, so one misbehaving processing unit killed hundreds
 * of healthy ones. `Status` carries a machine-readable code plus a
 * human-readable message, so failures can be *contained* — recorded in a
 * per-channel / per-PU RunReport (system/run_report.h) — instead of
 * thrown across the system boundary.
 *
 * `StatusError` is the exception form for the rare paths that must
 * unwind (a shard's run loop catches it at channel granularity). Codes
 * compare exactly, which the fault-injection determinism suite relies on
 * to assert RunReport equality across host thread counts.
 */

#include <stdexcept>
#include <string>

namespace fleet {

enum class StatusCode
{
    Ok = 0,
    /** Run completed, but on a truncated (short) input stream. */
    StreamTruncated,
    /** PU output exceeded its DRAM output region. */
    OutputOverflow,
    /** A corrupted read beat was caught by the per-beat parity check. */
    ParityError,
    /** Forward-progress watchdog: no token retired and no DRAM beat
     * moved for the configured window. */
    WatchdogStall,
    /** Channel did not finish within SystemConfig::maxCycles. */
    CycleLimitExceeded,
    /** Unexpected framework error escaped to the channel boundary. */
    InternalError,
    /** Caller asked for something the run cannot provide (e.g. a trace
     * export from a run that recorded no events). */
    InvalidArgument,
    /** Host filesystem error while exporting a report artifact. */
    IoError,
    /** API used out of protocol order (run() called twice, results read
     * before a run, a job armed on a busy unit). */
    InvalidState,
    /** Admission control turned the job away: the serving queue was at
     * its configured depth (serve/service.h) and the policy chose to
     * reject rather than block. */
    ResourceExhausted,
    /** The job was dropped from the admission queue to make room for a
     * newer one (ShedOldest policy, serve/service.h). Distinct from
     * ResourceExhausted so callers can tell "you were turned away at
     * the door" from "you were admitted, then evicted". */
    Shed,
    /** The job was abandoned by the service before it could be served:
     * submitted (or parked on admission) after shutdown began. */
    Cancelled,
    /** The job exceeded its per-job deadline (simulated cycles) and was
     * cancelled in-queue or killed mid-flight (ISSUE 7). */
    DeadlineExceeded,
};

const char *statusCodeName(StatusCode code);

/**
 * Failure-recovery taxonomy (ISSUE 7, DESIGN.md §5g). A *transient*
 * failure is one where re-running the same job can plausibly succeed:
 * the fault was in the environment (a corrupted beat caught by parity,
 * a short upload, a stalled or halted channel), not in the job. A
 * *permanent* failure is deterministic for the job itself (malformed
 * input, output overflow with the program's declared maxOutputExpansion
 * honored) or an explicit terminal decision (deadline, shed, cancel) —
 * retrying would reproduce it or violate the decision. `Ok` is neither.
 * serve::FleetService's RetryPolicy re-submits only transient codes.
 */
inline bool
statusCodeTransient(StatusCode code)
{
    switch (code) {
    case StatusCode::ParityError:
    case StatusCode::StreamTruncated:
    case StatusCode::WatchdogStall:
    case StatusCode::CycleLimitExceeded:
    case StatusCode::InternalError:
        return true;
    default:
        return false;
    }
}

struct Status
{
    StatusCode code = StatusCode::Ok;
    std::string message;

    bool ok() const { return code == StatusCode::Ok; }
    /** "[OutputOverflow] PU 3: ..." (or "[Ok]"). */
    std::string toString() const;

    static Status make(StatusCode code, std::string message = {})
    {
        return Status{code, std::move(message)};
    }
};

inline bool
operator==(const Status &a, const Status &b)
{
    return a.code == b.code && a.message == b.message;
}
inline bool
operator!=(const Status &a, const Status &b)
{
    return !(a == b);
}

/** Exception wrapper for unwinding paths; caught at channel granularity
 * by ChannelShard::run(). */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()), status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }

  private:
    Status status_;
};

} // namespace fleet

#endif // FLEET_UTIL_STATUS_H
