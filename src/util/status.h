#ifndef FLEET_UTIL_STATUS_H
#define FLEET_UTIL_STATUS_H

/**
 * @file
 * Structured error model for the runtime (ISSUE 2). The original failure
 * model was process-wide: any `fatal()` from a controller unwound the
 * whole simulation, so one misbehaving processing unit killed hundreds
 * of healthy ones. `Status` carries a machine-readable code plus a
 * human-readable message, so failures can be *contained* — recorded in a
 * per-channel / per-PU RunReport (system/run_report.h) — instead of
 * thrown across the system boundary.
 *
 * `StatusError` is the exception form for the rare paths that must
 * unwind (a shard's run loop catches it at channel granularity). Codes
 * compare exactly, which the fault-injection determinism suite relies on
 * to assert RunReport equality across host thread counts.
 */

#include <stdexcept>
#include <string>

namespace fleet {

enum class StatusCode
{
    Ok = 0,
    /** Run completed, but on a truncated (short) input stream. */
    StreamTruncated,
    /** PU output exceeded its DRAM output region. */
    OutputOverflow,
    /** A corrupted read beat was caught by the per-beat parity check. */
    ParityError,
    /** Forward-progress watchdog: no token retired and no DRAM beat
     * moved for the configured window. */
    WatchdogStall,
    /** Channel did not finish within SystemConfig::maxCycles. */
    CycleLimitExceeded,
    /** Unexpected framework error escaped to the channel boundary. */
    InternalError,
    /** Caller asked for something the run cannot provide (e.g. a trace
     * export from a run that recorded no events). */
    InvalidArgument,
    /** Host filesystem error while exporting a report artifact. */
    IoError,
    /** API used out of protocol order (run() called twice, results read
     * before a run, a job armed on a busy unit). */
    InvalidState,
    /** Admission control turned the job away: the serving queue was at
     * its configured depth (serve/service.h) and the policy chose to
     * reject or shed rather than block. */
    ResourceExhausted,
};

const char *statusCodeName(StatusCode code);

struct Status
{
    StatusCode code = StatusCode::Ok;
    std::string message;

    bool ok() const { return code == StatusCode::Ok; }
    /** "[OutputOverflow] PU 3: ..." (or "[Ok]"). */
    std::string toString() const;

    static Status make(StatusCode code, std::string message = {})
    {
        return Status{code, std::move(message)};
    }
};

inline bool
operator==(const Status &a, const Status &b)
{
    return a.code == b.code && a.message == b.message;
}
inline bool
operator!=(const Status &a, const Status &b)
{
    return !(a == b);
}

/** Exception wrapper for unwinding paths; caught at channel granularity
 * by ChannelShard::run(). */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()), status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }

  private:
    Status status_;
};

} // namespace fleet

#endif // FLEET_UTIL_STATUS_H
