#ifndef FLEET_UTIL_BITS_H
#define FLEET_UTIL_BITS_H

/**
 * @file
 * Bit-manipulation helpers shared by the language, simulator, and RTL
 * interpreter. Fleet values are plain uint64_t payloads paired with an
 * explicit bit width (the language caps state-element and token widths at
 * 64 bits; see lang/types.h). Every producer is responsible for keeping
 * values masked to their width; these helpers make that cheap and uniform.
 */

#include <cstdint>

namespace fleet {

/** Maximum width, in bits, of any Fleet value (token, register, BRAM word). */
inline constexpr int kMaxValueWidth = 64;

/**
 * All-ones mask for a width in [0, 64]. mask64(0) == 0, mask64(64) == ~0.
 */
constexpr uint64_t
mask64(int width)
{
    return width >= 64 ? ~uint64_t(0)
                       : ((uint64_t(1) << (width < 0 ? 0 : width)) - 1);
}

/** Truncate a value to the given width. */
constexpr uint64_t
truncTo(uint64_t value, int width)
{
    return value & mask64(width);
}

/** Extract bits [lo, lo+width) of a value. */
constexpr uint64_t
bitsOf(uint64_t value, int lo, int width)
{
    return (value >> lo) & mask64(width);
}

/** Sign-extend the low `width` bits of a value to 64 bits. */
constexpr int64_t
signExtend64(uint64_t value, int width)
{
    if (width <= 0 || width >= 64)
        return static_cast<int64_t>(value);
    uint64_t sign = uint64_t(1) << (width - 1);
    return static_cast<int64_t>((value ^ sign) - sign);
}

/**
 * Left shift guarded against shift counts >= 64 (undefined behaviour on
 * uint64_t in C++): the hardware answer for an oversized shift is 0.
 */
constexpr uint64_t
shl64(uint64_t value, uint64_t n)
{
    return n >= 64 ? 0 : value << n;
}

/** Right shift guarded against shift counts >= 64; see shl64. */
constexpr uint64_t
shr64(uint64_t value, uint64_t n)
{
    return n >= 64 ? 0 : value >> n;
}

/** Number of bits needed to represent `value` (ceil(log2(value+1)), min 1). */
constexpr int
bitsToRepresent(uint64_t value)
{
    int bits = 1;
    while (bits < 64 && value >> bits)
        ++bits;
    return bits;
}

/** Number of bits needed to index `count` distinct elements (min 1). */
constexpr int
indexWidth(uint64_t count)
{
    return count <= 1 ? 1 : bitsToRepresent(count - 1);
}

/** Integer ceiling division. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round `a` up to the next multiple of `b`. */
constexpr uint64_t
roundUp(uint64_t a, uint64_t b)
{
    return ceilDiv(a, b) * b;
}

} // namespace fleet

#endif // FLEET_UTIL_BITS_H
