#ifndef FLEET_UTIL_LOC_H
#define FLEET_UTIL_LOC_H

/**
 * @file
 * Lines-of-code counter used to regenerate the paper's Figure 8 (developer
 * productivity comparison). Counts non-blank lines, excluding // and block
 * comments, in C/C++-family sources.
 */

#include <string>
#include <vector>

namespace fleet {

/** Count non-blank, non-comment lines in C/C++-style source text. */
int countCodeLines(const std::string &source);

/** Count non-blank, non-comment lines in a source file. Throws on IO error. */
int countCodeLinesInFile(const std::string &path);

/** Sum of countCodeLinesInFile over several files. */
int countCodeLinesInFiles(const std::vector<std::string> &paths);

/**
 * Count the code lines of one brace-delimited region: the region starts
 * at the first '{' at or after the first occurrence of `marker` and ends
 * where braces re-balance. Used to compare the size of each application's
 * Fleet program against its CPU-baseline kernel (Figure 8). Throws if the
 * marker is missing or braces never balance.
 */
int countRegionLines(const std::string &path, const std::string &marker);

} // namespace fleet

#endif // FLEET_UTIL_LOC_H
