#include "util/bitbuf.h"

#include <cstring>

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {

BitBuffer::BitBuffer(uint64_t size_bits)
{
    resizeBits(size_bits);
}

BitBuffer
BitBuffer::fromBytes(const void *data, size_t size_bytes)
{
    BitBuffer buf;
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < size_bytes; ++i)
        buf.appendBits(bytes[i], 8);
    return buf;
}

BitBuffer
BitBuffer::fromString(const std::string &s)
{
    return fromBytes(s.data(), s.size());
}

void
BitBuffer::ensureCapacity(uint64_t size_bits)
{
    uint64_t words = ceilDiv(size_bits, 64);
    if (words > words_.size())
        words_.resize(words, 0);
}

void
BitBuffer::appendBits(uint64_t value, int width)
{
    if (width < 0 || width > 64)
        panic("BitBuffer::appendBits: bad width ", width);
    if (width == 0)
        return;
    value = truncTo(value, width);
    uint64_t offset = sizeBits_;
    ensureCapacity(offset + width);
    sizeBits_ += width;
    int word = offset / 64;
    int shift = offset % 64;
    words_[word] |= value << shift;
    if (shift + width > 64)
        words_[word + 1] |= value >> (64 - shift);
}

void
BitBuffer::appendBuffer(const BitBuffer &other)
{
    uint64_t remaining = other.sizeBits_;
    uint64_t offset = 0;
    while (remaining > 0) {
        int chunk = remaining < 64 ? static_cast<int>(remaining) : 64;
        appendBits(other.readBits(offset, chunk), chunk);
        offset += chunk;
        remaining -= chunk;
    }
}

uint64_t
BitBuffer::readBits(uint64_t bit_offset, int width, bool allow_pad) const
{
    if (width < 0 || width > 64)
        panic("BitBuffer::readBits: bad width ", width);
    if (width == 0)
        return 0;
    if (bit_offset + width > sizeBits_) {
        if (!allow_pad)
            panic("BitBuffer::readBits: read past end (offset ", bit_offset,
                  ", width ", width, ", size ", sizeBits_, ")");
        if (bit_offset >= sizeBits_)
            return 0;
    }
    uint64_t word = bit_offset / 64;
    int shift = bit_offset % 64;
    uint64_t lo = word < words_.size() ? words_[word] >> shift : 0;
    uint64_t hi = 0;
    if (shift != 0 && word + 1 < words_.size())
        hi = words_[word + 1] << (64 - shift);
    uint64_t value = truncTo(lo | hi, width);
    if (bit_offset + width > sizeBits_) {
        // Zero out any bits past the logical end (they may be stale if the
        // buffer was shrunk).
        value = truncTo(value, static_cast<int>(sizeBits_ - bit_offset));
    }
    return value;
}

void
BitBuffer::writeBits(uint64_t bit_offset, uint64_t value, int width)
{
    if (width < 0 || width > 64)
        panic("BitBuffer::writeBits: bad width ", width);
    if (bit_offset + width > sizeBits_)
        panic("BitBuffer::writeBits: write past end (offset ", bit_offset,
              ", width ", width, ", size ", sizeBits_, ")");
    if (width == 0)
        return;
    value = truncTo(value, width);
    uint64_t word = bit_offset / 64;
    int shift = bit_offset % 64;
    words_[word] = (words_[word] & ~(mask64(width) << shift)) |
                   (value << shift);
    if (shift + width > 64) {
        int hi_bits = shift + width - 64;
        words_[word + 1] = (words_[word + 1] & ~mask64(hi_bits)) |
                           (value >> (64 - shift));
    }
}

void
BitBuffer::resizeBits(uint64_t size_bits)
{
    ensureCapacity(size_bits);
    if (size_bits < sizeBits_) {
        // Clear the tail so later reads of re-grown space see zeros.
        uint64_t words = ceilDiv(size_bits, 64);
        words_.resize(words);
        if (size_bits % 64 != 0 && !words_.empty())
            words_.back() &= mask64(size_bits % 64);
    }
    sizeBits_ = size_bits;
}

void
BitBuffer::padToMultipleOf(uint64_t align_bits)
{
    if (align_bits == 0)
        panic("BitBuffer::padToMultipleOf: zero alignment");
    resizeBits(roundUp(sizeBits_, align_bits));
}

std::vector<uint8_t>
BitBuffer::toBytes() const
{
    std::vector<uint8_t> bytes(ceilDiv(sizeBits_, 8));
    for (size_t i = 0; i < bytes.size(); ++i) {
        int width = std::min<uint64_t>(8, sizeBits_ - i * 8);
        bytes[i] = static_cast<uint8_t>(readBits(i * 8, width));
    }
    return bytes;
}

std::string
BitBuffer::toString() const
{
    auto bytes = toBytes();
    return std::string(bytes.begin(), bytes.end());
}

bool
BitBuffer::operator==(const BitBuffer &other) const
{
    if (sizeBits_ != other.sizeBits_)
        return false;
    uint64_t offset = 0;
    uint64_t remaining = sizeBits_;
    while (remaining > 0) {
        int chunk = remaining < 64 ? static_cast<int>(remaining) : 64;
        if (readBits(offset, chunk) != other.readBits(offset, chunk))
            return false;
        offset += chunk;
        remaining -= chunk;
    }
    return true;
}

} // namespace fleet
