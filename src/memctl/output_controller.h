#ifndef FLEET_MEMCTL_OUTPUT_CONTROLLER_H
#define FLEET_MEMCTL_OUTPUT_CONTROLLER_H

/**
 * @file
 * Round-robin output controller for one memory channel — symmetric to the
 * input controller (Section 5). The addressing unit issues a write
 * address once a processing unit has a full burst buffered (or a final
 * partial burst after output_finished); burst registers fill from the
 * per-PU output buffers in parallel at w bits per cycle; completed bursts
 * are transmitted to the AXI W channel in address order. The addressing
 * unit is non-blocking by default, since filter-style units produce
 * output at dramatically different rates (paper, Section 5).
 *
 * Failure containment (ISSUE 2): a processing unit whose output would
 * exceed its DRAM region is *contained*, not fatal — the controller
 * stops issuing bursts for it, flushes what was already committed, drops
 * the uncommitted remainder, and raises an OverflowEvent so the shard
 * can record a per-PU OutputOverflow outcome while every other unit on
 * the channel keeps running.
 */

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "dram/dram.h"
#include "memctl/bitfifo.h"
#include "memctl/params.h"

namespace fleet {
namespace memctl {

class OutputController
{
  public:
    OutputController(dram::DramChannel &channel,
                     const ControllerParams &params,
                     std::vector<StreamRegion> regions);

    /** Per-PU output buffer the processing unit emits tokens into. */
    BitFifo &buffer(int pu) { return pus_[pu].buffer; }
    const BitFifo &buffer(int pu) const { return pus_[pu].buffer; }

    /** Inform the controller the PU asserted output_finished. */
    void setPuFinished(int pu);

    /** A PU whose next burst would exceed its output region. */
    struct OverflowEvent
    {
        int pu;
        uint64_t regionBytes; ///< The region it overflowed.
    };

    /** Oldest undelivered overflow event, if any. */
    std::optional<OverflowEvent> takeOverflowEvent();

    /** True once the PU was contained for output-region overflow. */
    bool puFailed(int pu) const { return pus_[pu].failed; }

    /**
     * True once the PU has finished (or been contained) and every bit it
     * committed has left the controller: no uncommitted output remains
     * (for a contained PU the uncommitted remainder was dropped), no
     * burst of its is still filling or awaiting transmission, so its
     * payloadBits() are all in channel memory (writes commit to memory
     * as their beats are pushed). The gate for re-arming the lane.
     */
    bool puFlushed(int pu) const;

    /**
     * Re-arm one PU's lane for the next job's output stream: resets the
     * finished / flushIssued / failed protocol state (all one-way within
     * a single job), the burst and payload accounting, and the buffer.
     * The lane must be flushed (puFlushed); the fixed output region is
     * reused, so the caller must read back the previous job's output
     * first. Shared structures (burst registers, order queue,
     * round-robin pointer) are untouched.
     */
    void rearmPu(int pu);

    /** All output flushed to channel memory for every finished PU. */
    bool done() const;

    /** Total payload bits written for one PU (for host readback). */
    uint64_t payloadBits(int pu) const { return pus_[pu].bitsAccepted; }

    /** Advance one cycle (call before the channel's tick()). */
    void tick();

    /// @name Statistics.
    /// @{
    uint64_t bitsCollected() const { return bitsCollected_; }
    uint64_t awIssued() const { return awIssued_; }
    /** Dump the controller's native counters into `out` (trace layer). */
    void exportCounters(trace::CounterSet &out) const;
    /** Issued-but-untransmitted bursts (addressing-unit lead; utilization
     * diagnostics). */
    int pendingBursts() const
    {
        return static_cast<int>(orderQueue_.size());
    }
    /// @}

  private:
    struct PuState
    {
        StreamRegion region;
        BitFifo buffer;
        uint64_t burstsIssued = 0;
        uint64_t bitsAccepted = 0; ///< Payload bits committed to bursts.
        uint64_t bitsPendingFill = 0; ///< Committed but not yet popped.
        bool finished = false;
        bool flushIssued = false; ///< Final partial burst issued.
        bool failed = false;      ///< Contained overflow: uncommitted
                                  ///< bits are dropped, not flushed.
    };

    struct PendingBurst
    {
        int pu;
        uint64_t payloadBits; ///< Real bits (rest of the burst is padding).
        int slot = -1;        ///< Burst register, -1 until assigned.
        int beatsSent = 0;
    };

    struct BurstSlot
    {
        bool active = false;
        uint64_t filledBits = 0;
        uint64_t payloadBits = 0;
        int owner = -1; ///< Index into orderQueue_ at assignment time is
                        ///< not stable; slots are referenced from
                        ///< PendingBurst::slot instead.
        std::vector<uint8_t> data;
    };

    void assignSlots();
    void fillSlots();
    void transmit();
    void issueAddresses();
    bool burstReady(const PuState &pu) const;

    dram::DramChannel &channel_;
    ControllerParams params_;
    std::vector<PuState> pus_;
    std::vector<BurstSlot> slots_;
    std::deque<PendingBurst> orderQueue_;
    std::deque<OverflowEvent> overflowEvents_;
    int rrPointer_ = 0;
    int beatsPerBurst_;
    uint64_t bitsCollected_ = 0;
    uint64_t awIssued_ = 0;
};

} // namespace memctl
} // namespace fleet

#endif // FLEET_MEMCTL_OUTPUT_CONTROLLER_H
