#ifndef FLEET_MEMCTL_OUTPUT_CONTROLLER_H
#define FLEET_MEMCTL_OUTPUT_CONTROLLER_H

/**
 * @file
 * Round-robin output controller for one memory channel — symmetric to the
 * input controller (Section 5). The addressing unit issues a write
 * address once a processing unit has a full burst buffered (or a final
 * partial burst after output_finished); burst registers fill from the
 * per-PU output buffers in parallel at w bits per cycle; completed bursts
 * are transmitted to the AXI W channel in address order. The addressing
 * unit is non-blocking by default, since filter-style units produce
 * output at dramatically different rates (paper, Section 5).
 */

#include <cstdint>
#include <deque>
#include <vector>

#include "dram/dram.h"
#include "memctl/bitfifo.h"
#include "memctl/params.h"

namespace fleet {
namespace memctl {

class OutputController
{
  public:
    OutputController(dram::DramChannel &channel,
                     const ControllerParams &params,
                     std::vector<StreamRegion> regions);

    /** Per-PU output buffer the processing unit emits tokens into. */
    BitFifo &buffer(int pu) { return pus_[pu].buffer; }

    /** Inform the controller the PU asserted output_finished. */
    void setPuFinished(int pu);

    /** All output flushed to channel memory for every finished PU. */
    bool done() const;

    /** Total payload bits written for one PU (for host readback). */
    uint64_t payloadBits(int pu) const { return pus_[pu].bitsAccepted; }

    /** Advance one cycle (call before the channel's tick()). */
    void tick();

    /// @name Statistics.
    /// @{
    uint64_t bitsCollected() const { return bitsCollected_; }
    uint64_t awIssued() const { return awIssued_; }
    /** Issued-but-untransmitted bursts (addressing-unit lead; utilization
     * diagnostics). */
    int pendingBursts() const
    {
        return static_cast<int>(orderQueue_.size());
    }
    /// @}

  private:
    struct PuState
    {
        StreamRegion region;
        BitFifo buffer;
        uint64_t burstsIssued = 0;
        uint64_t bitsAccepted = 0; ///< Payload bits committed to bursts.
        uint64_t bitsPendingFill = 0; ///< Committed but not yet popped.
        bool finished = false;
        bool flushIssued = false; ///< Final partial burst issued.
    };

    struct PendingBurst
    {
        int pu;
        uint64_t payloadBits; ///< Real bits (rest of the burst is padding).
        int slot = -1;        ///< Burst register, -1 until assigned.
        int beatsSent = 0;
    };

    struct BurstSlot
    {
        bool active = false;
        uint64_t filledBits = 0;
        uint64_t payloadBits = 0;
        int owner = -1; ///< Index into orderQueue_ at assignment time is
                        ///< not stable; slots are referenced from
                        ///< PendingBurst::slot instead.
        std::vector<uint8_t> data;
    };

    void assignSlots();
    void fillSlots();
    void transmit();
    void issueAddresses();
    bool burstReady(const PuState &pu) const;

    dram::DramChannel &channel_;
    ControllerParams params_;
    std::vector<PuState> pus_;
    std::vector<BurstSlot> slots_;
    std::deque<PendingBurst> orderQueue_;
    int rrPointer_ = 0;
    int beatsPerBurst_;
    uint64_t bitsCollected_ = 0;
    uint64_t awIssued_ = 0;
};

} // namespace memctl
} // namespace fleet

#endif // FLEET_MEMCTL_OUTPUT_CONTROLLER_H
