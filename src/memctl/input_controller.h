#ifndef FLEET_MEMCTL_INPUT_CONTROLLER_H
#define FLEET_MEMCTL_INPUT_CONTROLLER_H

/**
 * @file
 * Round-robin input controller for one memory channel (Section 5). An
 * addressing unit walks the channel's processing units issuing burst read
 * addresses well ahead of the data transfer unit (asynchronous address
 * supply); returning bursts land in one of r burst registers, which drain
 * in parallel — w bits per cycle each — into the per-PU BRAM input
 * buffers. Backpressure propagates naturally: a full buffer stalls its
 * burst register's drain, busy burst registers stall the AXI R channel,
 * and exhausted credits stall the addressing unit.
 *
 * Failure containment (ISSUE 2): each accepted read beat passes a parity
 * check; a corrupted beat (injected via fault/fault.h) raises a
 * ParityEvent for the owning processing unit instead of silently feeding
 * it bad tokens. The shard then calls killPu(), after which the dead
 * unit's in-flight bursts are discarded at full rate and no further
 * addresses are issued for it — so a contained failure can never wedge
 * the shared burst registers and stall healthy units on the channel.
 */

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "dram/dram.h"
#include "memctl/bitfifo.h"
#include "memctl/params.h"

namespace fleet {
namespace memctl {

class InputController
{
  public:
    InputController(dram::DramChannel &channel,
                    const ControllerParams &params,
                    std::vector<StreamRegion> regions);

    /** Per-PU input buffer the processing unit consumes tokens from. */
    BitFifo &buffer(int pu) { return pus_[pu].buffer; }
    const BitFifo &buffer(int pu) const { return pus_[pu].buffer; }

    /** True once every payload bit of the PU's stream is in (or through)
     * its buffer — drives the input_finished protocol signal together
     * with buffer emptiness. */
    bool streamExhausted(int pu) const;

    /** All streams fully issued, received, and drained into buffers. */
    bool done() const;

    /** Advance one cycle (call before the channel's tick()). */
    void tick();

    /** A corrupted beat caught by the per-beat parity check. */
    struct ParityEvent
    {
        int pu;        ///< Local PU whose stream the beat belonged to.
        uint64_t addr; ///< Byte address of the corrupted beat.
    };

    /** Oldest undelivered parity event, if any (at most one per cycle —
     * the channel delivers at most one beat per cycle). */
    std::optional<ParityEvent> takeParityEvent();

    /**
     * Contain a failed processing unit: issue no further bursts for it
     * and discard its in-flight and undrained data, so the channel's
     * shared burst registers and AR queue keep flowing for healthy PUs.
     */
    void killPu(int pu);

    /**
     * True once the PU's lane holds no controller-side work: every burst
     * of its (possibly shortened by killPu) stream has been issued and
     * fully drained or discarded. A lane must be idle before it can be
     * re-armed.
     */
    bool puIdle(int pu) const;

    /**
     * Re-arm one PU's lane with a fresh stream of `stream_bits` payload
     * bits (the caller has already written them at the lane's fixed
     * region base). Resets the per-PU issue/drain/credit state, clears
     * the buffer (including any sub-token residue of the previous
     * stream), and clears a killPu() quarantine — the input_finished
     * protocol starts over for the new stream. The lane must be idle
     * (puIdle); shared structures (burst registers, order queue,
     * round-robin pointer) are untouched, so channel-mates are
     * unaffected mid-flight.
     */
    void rearmPu(int pu, uint64_t stream_bits);

    /// @name Statistics.
    /// @{
    uint64_t bitsDelivered() const { return bitsDelivered_; }
    uint64_t arIssued() const { return arIssued_; }
    /** Payload bits pushed into one PU's input buffer so far. */
    uint64_t puBitsDelivered(int pu) const
    {
        return pus_[pu].bitsBuffered;
    }
    /** Total payload bits in one PU's input stream region. */
    uint64_t puStreamBits(int pu) const
    {
        return pus_[pu].region.streamBits;
    }
    /** Dump the controller's native counters into `out` (trace layer). */
    void exportCounters(trace::CounterSet &out) const;
    /** Issued-but-not-fully-drained bursts across all PUs (occupancy of
     * the addressing unit's pipeline; utilization diagnostics). */
    int inflightBursts() const
    {
        int total = 0;
        for (const auto &pu : pus_)
            total += pu.inflightBursts;
        return total;
    }
    /// @}

  private:
    struct PuState
    {
        StreamRegion region;
        BitFifo buffer;
        uint64_t totalBursts = 0;
        uint64_t burstsIssued = 0;
        uint64_t burstsReceived = 0; ///< Arrived at a burst register.
        uint64_t burstsDrained = 0;  ///< Fully pushed into the buffer.
        uint64_t bitsBuffered = 0; ///< Payload bits pushed into buffer.
        int inflightBursts = 0;    ///< Issued but not fully drained.
        bool dead = false;         ///< Contained failure: discard data.
    };

    struct BurstSlot
    {
        bool active = false;
        int pu = -1;
        uint64_t seq = 0; ///< This PU's burst index (drain ordering).
        int beatsReceived = 0;
        int beatsTotal = 0;
        uint64_t payloadBits = 0; ///< Stream bits in this burst (tail may
                                  ///< be short; padding is discarded).
        uint64_t drainedBits = 0;
        std::vector<uint8_t> data;
    };

    void drainSlots();
    void acceptBeat();
    void issueAddresses();
    bool creditAvailable(const PuState &pu) const;
    uint64_t burstPayloadBits(const PuState &pu, uint64_t burst_idx) const;

    dram::DramChannel &channel_;
    ControllerParams params_;
    std::vector<PuState> pus_;
    std::vector<BurstSlot> slots_;
    /** PUs of issued-but-not-fully-received bursts, in AR order. */
    std::deque<int> orderQueue_;
    int fillingSlot_ = -1; ///< Slot receiving the current burst's beats.
    std::deque<ParityEvent> parityEvents_;
    int rrPointer_ = 0;
    int beatsPerBurst_;
    uint64_t bitsDelivered_ = 0;
    uint64_t arIssued_ = 0;
};

} // namespace memctl
} // namespace fleet

#endif // FLEET_MEMCTL_INPUT_CONTROLLER_H
