#ifndef FLEET_MEMCTL_PARAMS_H
#define FLEET_MEMCTL_PARAMS_H

/**
 * @file
 * Shared configuration for the Fleet input and output memory controllers
 * (Section 5 of the paper). Defaults match the paper's F1 configuration:
 * 1024-bit bursts (two 512-bit beats), w = 32-bit buffer ports, r = 16
 * burst registers per controller, blocking input addressing and
 * non-blocking output addressing.
 */

#include <cstdint>

namespace fleet {
namespace memctl {

struct ControllerParams
{
    /** DRAM burst size in bits; also the per-PU buffer capacity. */
    int burstBits = 1024;
    /** Buffer data-port width w (bits moved per cycle per burst register). */
    int portWidth = 32;
    /** Number of burst registers r (parallel buffer drains/fills). */
    int numBurstRegs = 16;
    /**
     * Asynchronous address supply (Figure 9 ablation): when false, the
     * addressing unit issues a request only once the previous one has
     * fully returned, exposing the full DRAM latency on every burst.
     */
    bool asyncAddressSupply = true;
    /**
     * Blocking addressing waits at a processing unit until it can accept
     * (input) or produce (output) its next burst; non-blocking skips it.
     * Paper defaults: input blocking, output non-blocking.
     */
    bool blockingAddressing = true;
    /** Addressing-unit lead over the data-transfer unit (order queue). */
    int maxAheadRequests = 32;
    /**
     * Per-PU buffer capacity in bursts. The paper uses 1 ("capacity
     * equal to the burst size"); 2 enables double buffering — the next
     * burst is fetched while the previous drains — at the cost of an
     * extra BRAM-sized buffer per unit (see bench/ablation_memctl).
     */
    int bufferBursts = 1;
    /**
     * Token width of the attached processing units, in bits (0 =
     * unknown). When the token width does not divide the burst size, a
     * per-PU buffer sized to a whole number of bursts can wedge at
     * bufferBursts = 1: the output buffer fills to within tokenBits-1
     * bits of a burst — too full for the PU to push another token, not
     * full enough for the addressing unit to issue — and the input
     * buffer's sub-token residue blocks the next burst's credit. Setting
     * tokenBits lets the controllers add a one-token skid (tokenBits - 1
     * bits) to each buffer. Dividing widths get no skid, so their runs
     * are bit-identical with the field left at 0.
     */
    int tokenBits = 0;
};

/** Placement of one processing unit's stream within channel memory. */
struct StreamRegion
{
    uint64_t baseAddr = 0;   ///< Byte address, burst aligned.
    uint64_t regionBytes = 0; ///< Allocated bytes (burst multiple).
    uint64_t streamBits = 0; ///< Logical payload (input: exact token bits).
};

} // namespace memctl
} // namespace fleet

#endif // FLEET_MEMCTL_PARAMS_H
