#include "memctl/output_controller.h"

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace memctl {

OutputController::OutputController(dram::DramChannel &channel,
                                   const ControllerParams &params,
                                   std::vector<StreamRegion> regions)
    : channel_(channel), params_(params)
{
    int bus_bits = channel_.busWidthBytes() * 8;
    if (params_.burstBits % bus_bits != 0 || params_.burstBits < bus_bits) {
        fatal("OutputController: burst size must be a positive multiple "
              "of the bus width");
    }
    beatsPerBurst_ = params_.burstBits / bus_bits;

    // One-token skid: when the token width does not divide the burst
    // size, a buffer of exactly N bursts wedges — it fills to within
    // tokenBits-1 bits of a burst boundary, too full for the PU to push
    // and not full enough for the addressing unit to issue. The skid
    // keeps freeBits >= tokenBits whenever a burst is still short.
    uint64_t capacity =
        uint64_t(params_.burstBits) * std::max(1, params_.bufferBursts);
    if (params_.tokenBits > 0 && params_.burstBits % params_.tokenBits != 0)
        capacity += uint64_t(params_.tokenBits) - 1;
    for (auto &region : regions)
        pus_.push_back(PuState{region, BitFifo(capacity)});
    slots_.resize(params_.numBurstRegs);
    for (auto &slot : slots_)
        slot.data.resize(params_.burstBits / 8);
}

void
OutputController::setPuFinished(int pu)
{
    pus_[pu].finished = true;
}

std::optional<OutputController::OverflowEvent>
OutputController::takeOverflowEvent()
{
    if (overflowEvents_.empty())
        return std::nullopt;
    OverflowEvent event = overflowEvents_.front();
    overflowEvents_.pop_front();
    return event;
}

bool
OutputController::puFlushed(int pu_index) const
{
    const PuState &pu = pus_[pu_index];
    if (!pu.finished)
        return false;
    if (pu.failed ? pu.bitsPendingFill != 0 : !pu.buffer.empty())
        return false;
    // Committed bursts stay in the order queue until every beat has been
    // transmitted (and thereby committed to channel memory).
    for (const auto &pending : orderQueue_)
        if (pending.pu == pu_index)
            return false;
    return true;
}

void
OutputController::rearmPu(int pu_index)
{
    PuState &pu = pus_[pu_index];
    if (!puFlushed(pu_index))
        panic("OutputController: rearmPu(", pu_index,
              ") with output still in flight");
    pu.buffer.clear();
    pu.burstsIssued = 0;
    pu.bitsAccepted = 0;
    pu.bitsPendingFill = 0;
    pu.finished = false;
    pu.flushIssued = false;
    pu.failed = false;
}

bool
OutputController::done() const
{
    if (!orderQueue_.empty())
        return false;
    for (const auto &pu : pus_) {
        if (!pu.finished)
            return false;
        // An overflowed PU's uncommitted bits are dropped: only the bits
        // already committed to issued bursts still need to flush.
        if (pu.failed ? pu.bitsPendingFill != 0 : !pu.buffer.empty())
            return false;
    }
    return true;
}

bool
OutputController::burstReady(const PuState &pu) const
{
    // Bits already committed to an issued burst still sit in the buffer
    // until its burst register pops them; only uncommitted bits count.
    uint64_t available = pu.buffer.sizeBits() - pu.bitsPendingFill;
    if (available >= uint64_t(params_.burstBits))
        return true;
    return pu.finished && available > 0 && !pu.flushIssued;
}

void
OutputController::issueAddresses()
{
    if (pus_.empty())
        return;
    if (static_cast<int>(orderQueue_.size()) >= params_.maxAheadRequests)
        return;
    if (!params_.asyncAddressSupply) {
        // Synchronous supply: one outstanding write burst at a time.
        if (!orderQueue_.empty())
            return;
    }
    if (!channel_.awReady())
        return;

    int examined = 0;
    int count = static_cast<int>(pus_.size());
    while (examined < count) {
        PuState &pu = pus_[rrPointer_];
        bool skip_forever =
            pu.failed || (pu.finished &&
                          pu.buffer.sizeBits() == pu.bitsPendingFill);
        if (skip_forever) {
            // Produced its last output (or was contained): always skipped.
            rrPointer_ = (rrPointer_ + 1) % count;
            ++examined;
            continue;
        }
        if (!burstReady(pu)) {
            if (params_.blockingAddressing)
                return; // Wait for this PU's next output burst.
            rrPointer_ = (rrPointer_ + 1) % count;
            ++examined;
            continue;
        }
        uint64_t burst_bytes = params_.burstBits / 8;
        uint64_t addr = pu.region.baseAddr + pu.burstsIssued * burst_bytes;
        if ((pu.burstsIssued + 1) * burst_bytes > pu.region.regionBytes) {
            // Contained overflow: no room for another burst. Keep the
            // bursts already issued (their data flushes normally), drop
            // the uncommitted remainder, and report the PU failed. The
            // rest of the channel is unaffected.
            pu.failed = true;
            pu.finished = true;
            pu.flushIssued = true;
            overflowEvents_.push_back(
                OverflowEvent{rrPointer_, pu.region.regionBytes});
            rrPointer_ = (rrPointer_ + 1) % count;
            ++examined;
            continue;
        }
        uint64_t payload = std::min<uint64_t>(
            params_.burstBits, pu.buffer.sizeBits() - pu.bitsPendingFill);
        if (payload < uint64_t(params_.burstBits))
            pu.flushIssued = true; // Final partial burst.
        channel_.awPush(addr, beatsPerBurst_);
        orderQueue_.push_back(PendingBurst{rrPointer_, payload, -1, 0});
        pu.burstsIssued++;
        pu.bitsAccepted += payload;
        pu.bitsPendingFill += payload;
        ++awIssued_;
        rrPointer_ = (rrPointer_ + 1) % count;
        return;
    }
}

void
OutputController::assignSlots()
{
    for (auto &pending : orderQueue_) {
        if (pending.slot >= 0)
            continue;
        int free_slot = -1;
        for (size_t s = 0; s < slots_.size(); ++s) {
            if (!slots_[s].active) {
                free_slot = static_cast<int>(s);
                break;
            }
        }
        if (free_slot < 0)
            return;
        pending.slot = free_slot;
        BurstSlot &slot = slots_[free_slot];
        slot.active = true;
        slot.filledBits = 0;
        slot.payloadBits = pending.payloadBits;
        std::fill(slot.data.begin(), slot.data.end(), 0);
    }
}

void
OutputController::fillSlots()
{
    // A PU's bursts must pop its buffer in issue order; while an earlier
    // burst for the same PU is still filling, later ones wait.
    std::vector<bool> pu_filling(pus_.size(), false);
    for (auto &pending : orderQueue_) {
        bool earlier_incomplete = pu_filling[pending.pu];
        bool this_incomplete =
            pending.slot < 0 ||
            slots_[pending.slot].filledBits <
                slots_[pending.slot].payloadBits;
        if (this_incomplete)
            pu_filling[pending.pu] = true;
        if (pending.slot < 0 || earlier_incomplete)
            continue;
        BurstSlot &slot = slots_[pending.slot];
        if (slot.filledBits >= slot.payloadBits)
            continue;
        PuState &pu = pus_[pending.pu];
        uint64_t remaining = slot.payloadBits - slot.filledBits;
        int chunk = static_cast<int>(
            std::min<uint64_t>(params_.portWidth, remaining));
        if (pu.buffer.sizeBits() < uint64_t(chunk))
            continue; // Shouldn't starve: payload was buffered at issue.
        uint64_t value = pu.buffer.pop(chunk);
        pu.bitsPendingFill -= chunk;
        uint64_t bit_off = slot.filledBits;
        for (int put = 0; put < chunk;) {
            uint64_t byte = (bit_off + put) / 8;
            int shift = (bit_off + put) % 8;
            int piece = std::min(chunk - put, 8 - shift);
            slot.data[byte] |= uint8_t(((value >> put) & mask64(piece))
                                       << shift);
            put += piece;
        }
        slot.filledBits += chunk;
        bitsCollected_ += chunk;
    }
}

void
OutputController::transmit()
{
    if (orderQueue_.empty())
        return;
    PendingBurst &head = orderQueue_.front();
    if (head.slot < 0)
        return;
    BurstSlot &slot = slots_[head.slot];
    if (slot.filledBits < slot.payloadBits)
        return; // Head-of-line: wait until the oldest burst is complete.
    if (!channel_.wReady())
        return;
    int bus_bytes = channel_.busWidthBytes();
    channel_.wPush(slot.data.data() +
                   static_cast<size_t>(head.beatsSent) * bus_bytes);
    head.beatsSent++;
    if (head.beatsSent == beatsPerBurst_) {
        slot.active = false;
        orderQueue_.pop_front();
    }
}

void
OutputController::tick()
{
    issueAddresses();
    assignSlots();
    fillSlots();
    transmit();
}

void
OutputController::exportCounters(trace::CounterSet &out) const
{
    out.set("bits_collected", bitsCollected_);
    out.set("write_bursts_issued", awIssued_);
    out.set("burst_bits", params_.burstBits);
    out.set("beats_per_burst", beatsPerBurst_);
    out.set("pending_bursts", pendingBursts());
    uint64_t accepted = 0, failed = 0;
    for (const auto &pu : pus_) {
        accepted += pu.bitsAccepted;
        failed += pu.failed ? 1 : 0;
    }
    out.set("bits_accepted", accepted);
    out.set("pus_contained", failed);
}

} // namespace memctl
} // namespace fleet
