#include "memctl/input_controller.h"

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace memctl {

InputController::InputController(dram::DramChannel &channel,
                                 const ControllerParams &params,
                                 std::vector<StreamRegion> regions)
    : channel_(channel), params_(params)
{
    int bus_bits = channel_.busWidthBytes() * 8;
    if (params_.burstBits % bus_bits != 0 || params_.burstBits < bus_bits) {
        fatal("InputController: burst size must be a positive multiple of "
              "the bus width");
    }
    beatsPerBurst_ = params_.burstBits / (channel_.busWidthBytes() * 8);

    // One-token skid, mirroring the output controller: with a
    // non-dividing token width the buffer can hold a sub-token residue
    // (< tokenBits bits) the PU cannot pop, and creditAvailable() then
    // never clears residue + burstBits <= capacity. The extra
    // tokenBits-1 bits absorb the residue so the next burst's credit is
    // always reachable.
    uint64_t capacity =
        uint64_t(params_.burstBits) * std::max(1, params_.bufferBursts);
    if (params_.tokenBits > 0 && params_.burstBits % params_.tokenBits != 0)
        capacity += uint64_t(params_.tokenBits) - 1;
    for (auto &region : regions) {
        PuState pu{region, BitFifo(capacity)};
        pu.totalBursts = ceilDiv(region.streamBits, params_.burstBits);
        if (pu.totalBursts * (params_.burstBits / 8) > region.regionBytes)
            fatal("InputController: stream exceeds its region");
        pus_.push_back(std::move(pu));
    }
    slots_.resize(params_.numBurstRegs);
    for (auto &slot : slots_)
        slot.data.resize(params_.burstBits / 8);
}

bool
InputController::streamExhausted(int pu) const
{
    return pus_[pu].bitsBuffered == pus_[pu].region.streamBits;
}

bool
InputController::done() const
{
    for (const auto &pu : pus_) {
        if (pu.burstsIssued != pu.totalBursts || pu.inflightBursts != 0)
            return false;
    }
    return true;
}

uint64_t
InputController::burstPayloadBits(const PuState &pu,
                                  uint64_t burst_idx) const
{
    uint64_t start = burst_idx * params_.burstBits;
    uint64_t end = std::min<uint64_t>(start + params_.burstBits,
                                      pu.region.streamBits);
    return end - start;
}

bool
InputController::creditAvailable(const PuState &pu) const
{
    // Bits already committed to this PU (in flight or buffered) plus the
    // next burst must fit its buffer. With bufferBursts == 1 this is the
    // paper's scheme (one burst fetched once the buffer can take it);
    // larger buffers overlap the fetch of burst n+1 with the
    // consumption of burst n.
    uint64_t committed = uint64_t(pu.inflightBursts) * params_.burstBits +
                         pu.buffer.sizeBits();
    uint64_t payload = burstPayloadBits(pu, pu.burstsIssued);
    return committed + payload <= pu.buffer.capacityBits();
}

std::optional<InputController::ParityEvent>
InputController::takeParityEvent()
{
    if (parityEvents_.empty())
        return std::nullopt;
    ParityEvent event = parityEvents_.front();
    parityEvents_.pop_front();
    return event;
}

bool
InputController::puIdle(int pu_index) const
{
    const PuState &pu = pus_[pu_index];
    return pu.burstsIssued == pu.totalBursts && pu.inflightBursts == 0;
}

void
InputController::rearmPu(int pu_index, uint64_t stream_bits)
{
    PuState &pu = pus_[pu_index];
    if (!puIdle(pu_index))
        panic("InputController: rearmPu(", pu_index,
              ") with bursts still in flight");
    pu.region.streamBits = stream_bits;
    pu.totalBursts = ceilDiv(stream_bits, params_.burstBits);
    if (pu.totalBursts * (params_.burstBits / 8) > pu.region.regionBytes)
        panic("InputController: re-armed stream exceeds its region");
    pu.burstsIssued = 0;
    pu.burstsReceived = 0;
    pu.burstsDrained = 0;
    pu.bitsBuffered = 0;
    pu.buffer.clear();
    pu.dead = false;
}

void
InputController::killPu(int pu_index)
{
    PuState &pu = pus_[pu_index];
    pu.dead = true;
    // No further bursts for this stream; in-flight ones are discarded as
    // they complete (drainSlots), freeing their burst registers.
    pu.totalBursts = pu.burstsIssued;
}

void
InputController::drainSlots()
{
    for (auto &slot : slots_) {
        if (!slot.active || slot.beatsReceived != slot.beatsTotal)
            continue;
        PuState &pu = pus_[slot.pu];
        if (slot.seq != pu.burstsDrained)
            continue; // Keep each PU's bursts in stream order.
        if (pu.dead) {
            // Contained failure: discard the burst without touching the
            // buffer, so the register frees even if the buffer is full.
            slot.active = false;
            pu.inflightBursts--;
            pu.burstsDrained++;
            continue;
        }
        uint64_t remaining = slot.payloadBits - slot.drainedBits;
        int chunk = static_cast<int>(
            std::min<uint64_t>(params_.portWidth, remaining));
        if (pu.buffer.freeBits() < uint64_t(chunk))
            continue; // Buffer full: stall this burst register.
        // Read chunk bits starting at drainedBits within the burst.
        uint64_t bit_off = slot.drainedBits;
        uint64_t value = 0;
        for (int got = 0; got < chunk;) {
            uint64_t byte = (bit_off + got) / 8;
            int shift = (bit_off + got) % 8;
            int piece = std::min(chunk - got, 8 - shift);
            value |= uint64_t((slot.data[byte] >> shift) & mask64(piece))
                     << got;
            got += piece;
        }
        pu.buffer.push(value, chunk);
        slot.drainedBits += chunk;
        pu.bitsBuffered += chunk;
        bitsDelivered_ += chunk;
        if (slot.drainedBits == slot.payloadBits) {
            slot.active = false;
            pu.inflightBursts--;
            pu.burstsDrained++;
        }
    }
}

void
InputController::acceptBeat()
{
    if (!channel_.rValid())
        return;
    if (fillingSlot_ < 0) {
        // First beat of the next burst: allocate a free burst register.
        for (size_t s = 0; s < slots_.size(); ++s) {
            if (!slots_[s].active) {
                fillingSlot_ = static_cast<int>(s);
                break;
            }
        }
        if (fillingSlot_ < 0)
            return; // All burst registers busy: stall the R channel.
        if (orderQueue_.empty())
            panic("InputController: data beat with no outstanding request");
        BurstSlot &slot = slots_[fillingSlot_];
        slot.active = true;
        slot.pu = orderQueue_.front();
        orderQueue_.pop_front();
        slot.beatsReceived = 0;
        slot.beatsTotal = beatsPerBurst_;
        PuState &pu = pus_[slot.pu];
        // Bursts return in AR order per PU (the channel is in-order and
        // the addressing unit issues sequential addresses).
        slot.seq = pu.burstsReceived++;
        slot.payloadBits = burstPayloadBits(pu, slot.seq);
        slot.drainedBits = 0;
    }
    BurstSlot &slot = slots_[fillingSlot_];
    const dram::RBeat &beat = channel_.rPeek();
    const auto &mem = channel_.memory();
    int bus_bytes = channel_.busWidthBytes();
    std::copy(mem.begin() + beat.addr, mem.begin() + beat.addr + bus_bytes,
              slot.data.begin() +
                  static_cast<size_t>(slot.beatsReceived) * bus_bytes);
    // Per-beat parity check: a single-bit error is always detected.
    // Surface it as an event so the shard can contain the owning PU
    // before the burst drains into its buffer (at most one beat arrives
    // per cycle, so the event queue stays shallow).
    if (beat.corrupted && !pus_[slot.pu].dead)
        parityEvents_.push_back(ParityEvent{slot.pu, beat.addr});
    channel_.rPop();
    slot.beatsReceived++;
    if (slot.beatsReceived == slot.beatsTotal)
        fillingSlot_ = -1;
}

void
InputController::issueAddresses()
{
    if (pus_.empty())
        return;
    if (static_cast<int>(orderQueue_.size()) >= params_.maxAheadRequests)
        return;
    if (!params_.asyncAddressSupply) {
        // Synchronous supply: the next address is issued only once the
        // previous burst's data has fully returned (drain into the PU
        // buffer may still overlap).
        if (!orderQueue_.empty())
            return;
    }
    if (!channel_.arReady())
        return;

    // Round-robin walk; one address per cycle.
    int examined = 0;
    int count = static_cast<int>(pus_.size());
    while (examined < count) {
        PuState &pu = pus_[rrPointer_];
        if (pu.burstsIssued == pu.totalBursts) {
            // Finished consuming input: always skipped.
            rrPointer_ = (rrPointer_ + 1) % count;
            ++examined;
            continue;
        }
        if (!creditAvailable(pu)) {
            if (params_.blockingAddressing)
                return; // Wait here until this PU can accept.
            rrPointer_ = (rrPointer_ + 1) % count;
            ++examined;
            continue;
        }
        uint64_t addr = pu.region.baseAddr +
                        pu.burstsIssued * (params_.burstBits / 8);
        channel_.arPush(addr, beatsPerBurst_);
        orderQueue_.push_back(rrPointer_);
        pu.burstsIssued++;
        pu.inflightBursts++;
        ++arIssued_;
        rrPointer_ = (rrPointer_ + 1) % count;
        return;
    }
}

void
InputController::tick()
{
    drainSlots();
    acceptBeat();
    issueAddresses();
}

void
InputController::exportCounters(trace::CounterSet &out) const
{
    out.set("bits_delivered", bitsDelivered_);
    out.set("read_bursts_issued", arIssued_);
    out.set("burst_bits", params_.burstBits);
    out.set("beats_per_burst", beatsPerBurst_);
    out.set("inflight_bursts", inflightBursts());
    uint64_t stream_bits = 0, dead = 0;
    for (const auto &pu : pus_) {
        stream_bits += pu.region.streamBits;
        dead += pu.dead ? 1 : 0;
    }
    out.set("stream_bits_total", stream_bits);
    out.set("pus_contained", dead);
}

} // namespace memctl
} // namespace fleet
