#ifndef FLEET_MEMCTL_BITFIFO_H
#define FLEET_MEMCTL_BITFIFO_H

/**
 * @file
 * Fixed-capacity bit FIFO modelling a processing unit's BRAM-based input
 * or output buffer (Section 5 of the paper: each PU has buffers with
 * capacity equal to the memory-controller burst size and a data port of
 * width w, 32 bits on the F1). The cycle-level controllers push/pop whole
 * w-bit or token-width chunks; this class only models contents and
 * occupancy — timing is enforced by the callers.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace memctl {

class BitFifo
{
  public:
    explicit BitFifo(uint64_t capacity_bits)
        : capacity_(capacity_bits),
          words_(ceilDiv(capacity_bits, 64) + 1, 0)
    {
    }

    uint64_t capacityBits() const { return capacity_; }
    uint64_t sizeBits() const { return size_; }
    uint64_t freeBits() const { return capacity_ - size_; }
    bool empty() const { return size_ == 0; }

    /** Append `width` bits (width <= 64). Caller checks space. */
    void
    push(uint64_t value, int width)
    {
        if (width < 0 || width > 64)
            panic("BitFifo: bad push width ", width);
        if (uint64_t(width) > freeBits())
            panic("BitFifo: overflow (pushing ", width, " bits into ",
                  freeBits(), " free)");
        value = truncTo(value, width);
        // Word-by-word chunks never cross the ring end because the ring
        // is a whole number of 64-bit words.
        uint64_t pos = tail_;
        int done = 0;
        while (done < width) {
            int word = pos / 64;
            int shift = pos % 64;
            int chunk = std::min<int>(width - done, 64 - shift);
            words_[word] |= ((value >> done) & mask64(chunk)) << shift;
            done += chunk;
            pos = advance(pos, chunk);
        }
        tail_ = pos;
        size_ += width;
    }

    /** Remove and return `width` bits (width <= 64). Caller checks size. */
    uint64_t
    pop(int width)
    {
        uint64_t value = peek(width);
        clearRange(head_, width);
        head_ = advance(head_, width);
        size_ -= width;
        return value;
    }

    /** Read the next `width` bits without removing them. */
    uint64_t
    peek(int width) const
    {
        if (width < 0 || width > 64)
            panic("BitFifo: bad pop width ", width);
        if (uint64_t(width) > size_)
            panic("BitFifo: underflow (popping ", width, " bits of ",
                  size_, ")");
        uint64_t pos = head_;
        uint64_t value = 0;
        int got = 0;
        while (got < width) {
            int word = pos / 64;
            int shift = pos % 64;
            int chunk = std::min<int>(width - got, 64 - shift);
            // Bits until the physical end of the ring.
            uint64_t ring_end = ringBits();
            if (pos + chunk > ring_end)
                chunk = static_cast<int>(ring_end - pos);
            uint64_t piece = (words_[word] >> shift) & mask64(chunk);
            value |= piece << got;
            got += chunk;
            pos = advance(pos, chunk);
        }
        return value;
    }

    void
    clear()
    {
        head_ = tail_ = size_ = 0;
        std::fill(words_.begin(), words_.end(), 0);
    }

  private:
    /** Ring size in bits (rounded up to a whole word for simplicity). */
    uint64_t ringBits() const { return (words_.size() - 1) * 64; }

    uint64_t
    advance(uint64_t pos, int bits) const
    {
        pos += bits;
        if (pos >= ringBits())
            pos -= ringBits();
        return pos;
    }

    void
    clearRange(uint64_t pos, int width)
    {
        int cleared = 0;
        while (cleared < width) {
            int word = pos / 64;
            int shift = pos % 64;
            int chunk = std::min<int>(width - cleared, 64 - shift);
            uint64_t ring_end = ringBits();
            if (pos + chunk > ring_end)
                chunk = static_cast<int>(ring_end - pos);
            words_[word] &= ~(mask64(chunk) << shift);
            cleared += chunk;
            pos = advance(pos, chunk);
        }
    }

    uint64_t capacity_;
    std::vector<uint64_t> words_;
    uint64_t head_ = 0;
    uint64_t tail_ = 0;
    uint64_t size_ = 0;
};

} // namespace memctl
} // namespace fleet

#endif // FLEET_MEMCTL_BITFIFO_H
