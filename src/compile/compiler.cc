#include "compile/compiler.h"

#include <unordered_map>
#include <vector>

#include "lang/check.h"
#include "lang/flatten.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace compile {

using lang::Expr;
using lang::ExprKind;
using lang::FlatProgram;
using lang::LValue;
using lang::Program;
using rtl::Circuit;
using rtl::kNoNode;
using rtl::NodeId;

namespace {

/**
 * Builds the circuit for one program. Kept as a class so the two
 * expression-translation environments (current values and forwarded next
 * values) can share the structural state.
 */
class UnitCompiler
{
  public:
    UnitCompiler(const Program &program, const CompileOptions &options)
        : program_(program), options_(options), circuit_(program.name)
    {
    }

    CompiledUnit compile();

  private:
    /** Translate an expression against current register/BRAM values. */
    NodeId trans(const Expr &e);
    /** Translate against forwarded next values (stage-1 addressing). */
    NodeId transNext(const Expr &e);

    /** Gating condition for an action in the current environment. */
    NodeId gateNow(const Expr &cond, bool inside_while);
    /** Gating condition in the next-value environment. */
    NodeId gateNext(const Expr &cond, bool inside_while);
    /** while_done over forwarded next values (built lazily: it is only
     * legal/needed when some BRAM is read at multiple addresses). */
    NodeId whileDoneNext();

    const Program &program_;
    CompileOptions options_;
    Circuit circuit_;
    FlatProgram flat_;

    /** Runtime-check conflict terms (insertRuntimeChecks). */
    std::vector<NodeId> conflictTerms_;

    /** Add pairwise-conflict terms for a group of gates. */
    void
    addConflicts(const std::vector<NodeId> &gates)
    {
        if (!options_.insertRuntimeChecks)
            return;
        for (size_t i = 0; i < gates.size(); ++i)
            for (size_t j = i + 1; j < gates.size(); ++j)
                conflictTerms_.push_back(
                    circuit_.makeAnd(gates[i], gates[j]));
    }

    // Ports.
    NodeId inTok_ = kNoNode, inValid_ = kNoNode, inFin_ = kNoNode,
           outReady_ = kNoNode;

    // Architectural registers.
    int regI_ = -1, regV_ = -1, regF_ = -1;

    // Per user register / vreg element / bram.
    std::vector<int> userRegs_;
    std::vector<std::vector<int>> vregRegs_;
    std::vector<int> bramIdx_;
    std::vector<int> lastWrAddrRegs_;
    std::vector<int> lastWrDataRegs_;
    std::vector<int> rdAddrHoldRegs_;
    std::vector<NodeId> fwdRdData_; ///< Forwarded read data per BRAM.

    // Key control nodes.
    NodeId whileDone_ = kNoNode, whileDoneNext_ = kNoNode;
    NodeId outputValid_ = kNoNode, vDone_ = kNoNode, inputReady_ = kNoNode;

    // Next-value nodes per user register / vreg element (r_n, before the
    // v_done gate).
    std::vector<NodeId> regNext_;
    std::vector<std::vector<NodeId>> vregNext_;

    struct WrPort
    {
        NodeId en, addr, data;
    };
    std::vector<WrPort> bramWrPorts_;

    std::unordered_map<const lang::ExprNode *, NodeId> memoNow_;
    std::unordered_map<const lang::ExprNode *, NodeId> memoNext_;
};

NodeId
UnitCompiler::trans(const Expr &e)
{
    auto it = memoNow_.find(e.get());
    if (it != memoNow_.end())
        return it->second;
    Circuit &c = circuit_;
    NodeId result = kNoNode;
    switch (e->kind) {
      case ExprKind::Const:
        result = c.makeConst(e->value, e->width);
        break;
      case ExprKind::Input:
        result = c.regOut(regI_);
        break;
      case ExprKind::StreamFinished:
        result = c.regOut(regF_);
        break;
      case ExprKind::RegRead:
        result = c.regOut(userRegs_[e->stateId]);
        break;
      case ExprKind::VecRegRead: {
        const auto &decl = program_.vreg(e->stateId);
        if (e->a->kind == ExprKind::Const) {
            // Constant index: a direct wire, as real RTL would elaborate.
            uint64_t j = e->a->value;
            result = j < uint64_t(decl.elements)
                         ? c.regOut(vregRegs_[e->stateId][j])
                         : c.makeConst(0, decl.width);
            break;
        }
        // Mux tree over the element registers; out-of-range indexes read
        // zero, matching the functional simulator's don't-care rule.
        NodeId idx = trans(e->a);
        result = c.makeConst(0, decl.width);
        for (int j = 0; j < decl.elements; ++j) {
            NodeId is_j = c.makeBin(BinOp::Eq, idx,
                                    c.makeConst(j, decl.indexWidth));
            result = c.makeMux(is_j, c.regOut(vregRegs_[e->stateId][j]),
                               result);
        }
        break;
      }
      case ExprKind::BramRead:
        // All reads of one BRAM in a virtual cycle see the same (single)
        // issued address, so every read expression maps to the forwarded
        // read-data node; the address expression feeds stage 1 separately.
        result = fwdRdData_[e->stateId];
        break;
      case ExprKind::Bin:
        result = c.makeBin(e->binOp, trans(e->a), trans(e->b));
        break;
      case ExprKind::Un:
        result = c.makeUn(e->unOp, trans(e->a));
        break;
      case ExprKind::Mux:
        result = c.makeMux(trans(e->c), trans(e->a), trans(e->b));
        break;
      case ExprKind::Slice:
        result = c.makeSlice(trans(e->a), e->sliceLo + e->width - 1,
                             e->sliceLo);
        break;
      case ExprKind::Concat:
        result = c.makeConcat(trans(e->a), trans(e->b));
        break;
    }
    memoNow_[e.get()] = result;
    return result;
}

NodeId
UnitCompiler::transNext(const Expr &e)
{
    auto it = memoNext_.find(e.get());
    if (it != memoNext_.end())
        return it->second;
    Circuit &c = circuit_;
    NodeId result = kNoNode;
    switch (e->kind) {
      case ExprKind::Const:
        result = c.makeConst(e->value, e->width);
        break;
      case ExprKind::Input: {
        // Forwarded held token: a new token is captured only on the input
        // handshake; otherwise the register keeps its value. (This is the
        // Figure 4 line 29 fix documented in DESIGN.md.)
        NodeId captured = c.makeMux(inValid_, inTok_,
                                    c.makeConst(0, program_.inputTokenWidth));
        result = c.makeMux(inputReady_, captured, c.regOut(regI_));
        break;
      }
      case ExprKind::StreamFinished: {
        NodeId f = c.regOut(regF_);
        NodeId f_set = c.makeBin(BinOp::LOr, f, inFin_);
        result = c.makeMux(inputReady_, f_set, f);
        break;
      }
      case ExprKind::RegRead: {
        // Committed only when the virtual cycle completes.
        NodeId r_n = regNext_[e->stateId];
        result = c.makeMux(vDone_, r_n, c.regOut(userRegs_[e->stateId]));
        break;
      }
      case ExprKind::VecRegRead: {
        const auto &decl = program_.vreg(e->stateId);
        auto elem_next = [&](int j) {
            return c.makeMux(vDone_, vregNext_[e->stateId][j],
                             c.regOut(vregRegs_[e->stateId][j]));
        };
        if (e->a->kind == ExprKind::Const) {
            uint64_t j = e->a->value;
            result = j < uint64_t(decl.elements)
                         ? elem_next(int(j))
                         : c.makeConst(0, decl.width);
            break;
        }
        NodeId idx = transNext(e->a);
        result = c.makeConst(0, decl.width);
        for (int j = 0; j < decl.elements; ++j) {
            NodeId is_j = c.makeBin(BinOp::Eq, idx,
                                    c.makeConst(j, decl.indexWidth));
            result = c.makeMux(is_j, elem_next(j), result);
        }
        break;
      }
      case ExprKind::BramRead:
        panic("compiler: BRAM read reached stage-1 addressing; the static "
              "checker should have rejected this program");
      case ExprKind::Bin:
        result = c.makeBin(e->binOp, transNext(e->a), transNext(e->b));
        break;
      case ExprKind::Un:
        result = c.makeUn(e->unOp, transNext(e->a));
        break;
      case ExprKind::Mux:
        result = c.makeMux(transNext(e->c), transNext(e->a),
                           transNext(e->b));
        break;
      case ExprKind::Slice:
        result = c.makeSlice(transNext(e->a), e->sliceLo + e->width - 1,
                             e->sliceLo);
        break;
      case ExprKind::Concat:
        result = c.makeConcat(transNext(e->a), transNext(e->b));
        break;
    }
    memoNext_[e.get()] = result;
    return result;
}

NodeId
UnitCompiler::gateNow(const Expr &cond, bool inside_while)
{
    NodeId base = cond ? trans(cond) : circuit_.makeConst(1, 1);
    return inside_while ? base : circuit_.makeAnd(whileDone_, base);
}

NodeId
UnitCompiler::whileDoneNext()
{
    if (whileDoneNext_ == kNoNode) {
        std::vector<NodeId> nodes;
        for (const auto &cond : flat_.whileConds)
            nodes.push_back(transNext(cond));
        whileDoneNext_ = circuit_.makeNot(circuit_.makeOrReduce(nodes));
    }
    return whileDoneNext_;
}

NodeId
UnitCompiler::gateNext(const Expr &cond, bool inside_while)
{
    NodeId base = cond ? transNext(cond) : circuit_.makeConst(1, 1);
    return inside_while ? base : circuit_.makeAnd(whileDoneNext(), base);
}

CompiledUnit
UnitCompiler::compile()
{
    lang::checkProgram(program_);
    flat_ = lang::flatten(program_);
    Circuit &c = circuit_;

    // --- Ports and architectural state -----------------------------------
    inTok_ = c.addInput("input_token", program_.inputTokenWidth);
    inValid_ = c.addInput("input_valid", 1);
    inFin_ = c.addInput("input_finished", 1);
    outReady_ = c.addInput("output_ready", 1);

    regI_ = c.addReg("i", program_.inputTokenWidth, 0);
    regV_ = c.addReg("v", 1, 0);
    regF_ = c.addReg("f", 1, 0);

    for (const auto &reg : program_.regs)
        userRegs_.push_back(c.addReg("u_" + reg.name, reg.width, reg.init));
    for (const auto &vreg : program_.vregs) {
        std::vector<int> elems;
        for (int j = 0; j < vreg.elements; ++j) {
            elems.push_back(c.addReg(
                "u_" + vreg.name + "_" + std::to_string(j), vreg.width,
                vreg.init));
        }
        vregRegs_.push_back(std::move(elems));
    }
    for (const auto &bram : program_.brams) {
        int b = c.addBram("u_" + bram.name, bram.elements, bram.width);
        bramIdx_.push_back(b);
        // Sentinel init: one past the largest legal address, so the
        // forwarding compare cannot spuriously hit after reset.
        lastWrAddrRegs_.push_back(
            c.addReg(bram.name + "_lastWrAddr", bram.addrWidth + 1,
                     uint64_t(1) << bram.addrWidth));
        lastWrDataRegs_.push_back(
            c.addReg(bram.name + "_lastWrData", bram.width, 0));
        rdAddrHoldRegs_.push_back(
            c.addReg(bram.name + "_rdAddrHold", bram.addrWidth, 0));
        // Forwarded read data: last virtual cycle's write wins over the
        // (read-first) BRAM output when the addresses match.
        NodeId hold_ext = c.makeResize(c.regOut(rdAddrHoldRegs_.back()),
                                       bram.addrWidth + 1);
        NodeId match = c.makeBin(BinOp::Eq,
                                 c.regOut(lastWrAddrRegs_.back()), hold_ext);
        fwdRdData_.push_back(c.makeMux(match,
                                       c.regOut(lastWrDataRegs_.back()),
                                       c.bramRdData(b)));
    }

    // --- Control: while_done, output_valid, v_done, input_ready ----------
    std::vector<NodeId> while_nodes;
    for (const auto &cond : flat_.whileConds)
        while_nodes.push_back(trans(cond));
    whileDone_ = c.makeNot(c.makeOrReduce(while_nodes));

    std::vector<NodeId> emit_gates;
    std::vector<NodeId> emit_vals;
    for (const auto &emit : flat_.emits) {
        emit_gates.push_back(gateNow(emit.cond, emit.insideWhile));
        emit_vals.push_back(trans(emit.value));
    }
    outputValid_ = c.makeAnd(c.regOut(regV_), c.makeOrReduce(emit_gates));
    addConflicts(emit_gates);
    NodeId output_token = c.makeConst(0, program_.outputTokenWidth);
    for (size_t k = emit_gates.size(); k-- > 0;)
        output_token = c.makeMux(emit_gates[k], emit_vals[k], output_token);

    NodeId output_ok = c.makeBin(BinOp::LOr, c.makeNot(outputValid_),
                                 outReady_);
    vDone_ = c.makeAnd(c.regOut(regV_), output_ok);
    inputReady_ = c.makeBin(BinOp::LOr, c.makeNot(c.regOut(regV_)),
                            c.makeAnd(whileDone_, output_ok));

    // --- Stage 2: next values for registers, vregs, BRAM writes ----------
    struct RegAssign
    {
        NodeId gate;
        NodeId value;
    };
    std::vector<std::vector<RegAssign>> per_reg(program_.regs.size());
    struct VecAssign
    {
        NodeId gate;
        NodeId index;
        NodeId value;
    };
    std::vector<std::vector<VecAssign>> per_vreg(program_.vregs.size());
    struct BramWrite
    {
        NodeId gate;
        NodeId addr;
        NodeId value;
    };
    std::vector<std::vector<BramWrite>> per_bram(program_.brams.size());

    for (const auto &assign : flat_.assigns) {
        NodeId gate = gateNow(assign.cond, assign.insideWhile);
        switch (assign.target.kind) {
          case LValue::Kind::Reg: {
            int w = program_.reg(assign.target.stateId).width;
            per_reg[assign.target.stateId].push_back(
                RegAssign{gate, c.makeResize(trans(assign.value), w)});
            break;
          }
          case LValue::Kind::VecElem: {
            int w = program_.vreg(assign.target.stateId).width;
            per_vreg[assign.target.stateId].push_back(
                VecAssign{gate, trans(assign.target.index),
                          c.makeResize(trans(assign.value), w)});
            break;
          }
          case LValue::Kind::BramElem: {
            int w = program_.bram(assign.target.stateId).width;
            per_bram[assign.target.stateId].push_back(
                BramWrite{gate, trans(assign.target.index),
                          c.makeResize(trans(assign.value), w)});
            break;
          }
        }
    }

    regNext_.resize(program_.regs.size());
    for (size_t r = 0; r < program_.regs.size(); ++r) {
        NodeId acc = c.regOut(userRegs_[r]);
        std::vector<NodeId> gates;
        for (size_t k = per_reg[r].size(); k-- > 0;) {
            acc = c.makeMux(per_reg[r][k].gate, per_reg[r][k].value, acc);
            gates.push_back(per_reg[r][k].gate);
        }
        addConflicts(gates);
        regNext_[r] = acc;
        c.setRegNext(userRegs_[r], acc, vDone_);
    }

    vregNext_.resize(program_.vregs.size());
    for (size_t v = 0; v < program_.vregs.size(); ++v) {
        const auto &decl = program_.vregs[v];
        vregNext_[v].resize(decl.elements);
        for (int j = 0; j < decl.elements; ++j) {
            NodeId acc = c.regOut(vregRegs_[v][j]);
            std::vector<NodeId> gates;
            for (size_t k = per_vreg[v].size(); k-- > 0;) {
                const auto &va = per_vreg[v][k];
                NodeId is_j = c.makeBin(BinOp::Eq, va.index,
                                        c.makeConst(j, decl.indexWidth));
                NodeId gate = c.makeAnd(va.gate, is_j);
                acc = c.makeMux(gate, va.value, acc);
                gates.push_back(gate);
            }
            addConflicts(gates);
            vregNext_[v][j] = acc;
            c.setRegNext(vregRegs_[v][j], acc, vDone_);
        }
    }

    for (size_t b = 0; b < program_.brams.size(); ++b) {
        const auto &decl = program_.brams[b];
        std::vector<NodeId> gates;
        NodeId wr_addr = c.makeConst(0, decl.addrWidth);
        NodeId wr_data = c.makeConst(0, decl.width);
        for (size_t k = per_bram[b].size(); k-- > 0;) {
            const auto &w = per_bram[b][k];
            gates.push_back(w.gate);
            wr_addr = c.makeMux(w.gate, w.addr, wr_addr);
            wr_data = c.makeMux(w.gate, w.value, wr_data);
        }
        addConflicts(gates);
        NodeId wr_en = c.makeAnd(vDone_, c.makeOrReduce(gates));

        // Forwarding registers track the last committed write.
        c.setRegNext(lastWrAddrRegs_[b],
                     c.makeResize(wr_addr, decl.addrWidth + 1), wr_en);
        c.setRegNext(lastWrDataRegs_[b], wr_data, wr_en);

        // Read port wired below (needs the next-value environment).
        bramWrPorts_.push_back(WrPort{wr_en, wr_addr, wr_data});
    }

    // --- Stage 1: next-virtual-cycle read addresses -----------------------
    // Deduplicate reads per BRAM by structural address equality, OR-ing
    // their gates ("each BRAM is read at most once per virtual cycle").
    for (size_t b = 0; b < program_.brams.size(); ++b) {
        const auto &decl = program_.brams[b];
        std::vector<std::pair<Expr, std::vector<const lang::BramReadOcc *>>>
            unique_reads;
        for (const auto &occ : flat_.bramReads) {
            if (occ.bramId != static_cast<int>(b))
                continue;
            bool merged = false;
            for (auto &[addr, occs] : unique_reads) {
                if (lang::exprEqual(addr, occ.addr)) {
                    occs.push_back(&occ);
                    merged = true;
                    break;
                }
            }
            if (!merged)
                unique_reads.push_back({occ.addr, {&occ}});
        }

        NodeId next_addr;
        if (unique_reads.size() > 1 && options_.insertRuntimeChecks) {
            // Two distinct read addresses gated true in one virtual
            // cycle violate the one-read restriction.
            std::vector<NodeId> group_gates;
            for (const auto &[addr, occs] : unique_reads) {
                std::vector<NodeId> gates;
                for (const auto *occ : occs)
                    gates.push_back(gateNow(occ->cond, occ->insideWhile));
                group_gates.push_back(c.makeOrReduce(gates));
            }
            addConflicts(group_gates);
        }
        if (unique_reads.size() == 1) {
            // Single read address: issue it unconditionally (no select
            // needed, so its gates may even depend on read data).
            next_addr = transNext(unique_reads[0].first);
        } else {
            next_addr = c.makeConst(0, decl.addrWidth);
            for (auto it = unique_reads.rbegin();
                 it != unique_reads.rend(); ++it) {
                std::vector<NodeId> gates;
                for (const auto *occ : it->second)
                    gates.push_back(gateNext(occ->cond, occ->insideWhile));
                next_addr = c.makeMux(c.makeOrReduce(gates),
                                      transNext(it->first), next_addr);
            }
        }

        // Issue the next address when this virtual cycle completes or the
        // unit is idle (a token may be captured this cycle); hold during
        // stalls so read data stays stable.
        NodeId issue = c.makeBin(BinOp::LOr, vDone_,
                                 c.makeNot(c.regOut(regV_)));
        NodeId rd_addr = c.makeMux(issue, next_addr,
                                   c.regOut(rdAddrHoldRegs_[b]));
        c.setRegNext(rdAddrHoldRegs_[b],
                     c.makeResize(rd_addr, decl.addrWidth));

        const auto &wr = bramWrPorts_[b];
        c.setBramPorts(bramIdx_[b], rd_addr, wr.en, wr.addr, wr.data);
    }

    // --- Input handshake registers ----------------------------------------
    NodeId captured = c.makeMux(inValid_, inTok_,
                                c.makeConst(0, program_.inputTokenWidth));
    c.setRegNext(regI_, captured, inputReady_);
    NodeId v_next = c.makeBin(
        BinOp::LOr, inValid_,
        c.makeAnd(c.makeNot(c.regOut(regF_)), inFin_));
    c.setRegNext(regV_, v_next, inputReady_);
    c.setRegNext(regF_, c.makeBin(BinOp::LOr, c.regOut(regF_), inFin_),
                 inputReady_);

    NodeId output_finished = c.makeAnd(c.makeNot(c.regOut(regV_)),
                                       c.regOut(regF_));

    // --- Module outputs ----------------------------------------------------
    c.addOutput("input_ready", inputReady_);
    c.addOutput("output_token", output_token);
    c.addOutput("output_valid", outputValid_);
    c.addOutput("output_finished", output_finished);

    NodeId violation = kNoNode;
    if (options_.insertRuntimeChecks) {
        violation = c.makeAnd(c.regOut(regV_),
                              c.makeOrReduce(conflictTerms_));
        c.addOutput("violation", violation);
    }

    c.validate();

    CompiledUnit unit{std::move(circuit_),
                      0, 1, 2, 3,
                      inputReady_, output_token, outputValid_,
                      output_finished, violation,
                      program_.inputTokenWidth, program_.outputTokenWidth};
    return unit;
}

} // namespace

CompiledUnit
compileProgram(const Program &program, const CompileOptions &options)
{
    UnitCompiler compiler(program, options);
    return compiler.compile();
}

} // namespace compile
} // namespace fleet
