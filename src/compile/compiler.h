#ifndef FLEET_COMPILE_COMPILER_H
#define FLEET_COMPILE_COMPILER_H

/**
 * @file
 * The Fleet compiler: lowers a checked processing-unit program into an RTL
 * circuit implementing the paper's two-stage virtual-cycle pipeline
 * (Section 4 / Figures 4-5), with a guaranteed throughput of one virtual
 * cycle per clock in the absence of input/output stalls:
 *
 *  - stage 1 issues each BRAM's (single) read address for the *next*
 *    virtual cycle, computed from forwarded next-values of registers;
 *  - stage 2 commits register/vector/BRAM writes and emits at most one
 *    output token, all gated by `v_done` (virtual cycle completing);
 *  - a (lastWrAddr, lastWrData) register pair per BRAM forwards a value
 *    written by the previous virtual cycle into a same-address read;
 *  - `while_done` gates statements outside loops and the input handshake;
 *  - ready-valid IO with the exact port list of Section 4.
 *
 * Deviation from Figure 4 (documented in DESIGN.md): the figure substitutes
 * `input_token` for the held-token register in next-read-address
 * computation even when the next virtual cycle does not consume a new
 * token; we use the correctly forwarded value. We also register the issued
 * read address (`rd_addr_hold`) to keep read data stable across stalls
 * instead of recomputing a "current" address.
 */

#include "lang/ast.h"
#include "rtl/circuit.h"

namespace fleet {
namespace compile {

struct CompileOptions
{
    /**
     * Insert the paper's optional runtime restriction checks (Section 3:
     * "or we could insert logic to perform runtime checks"): an extra
     * `violation` output asserts during any virtual cycle in which two
     * emits, two writes to one BRAM, two reads of one BRAM at different
     * addresses, or two assignments to one register/vector element would
     * fire. Programs that lang::analyzeProgram proves safe never need
     * this logic.
     */
    bool insertRuntimeChecks = false;
};

/** A compiled processing unit: the circuit plus its IO port handles. */
struct CompiledUnit
{
    rtl::Circuit circuit;

    /// @name Input port indices (drive via rtl::Simulator::setInput).
    /// @{
    int inInputToken;
    int inInputValid;
    int inInputFinished;
    int inOutputReady;
    /// @}

    /// @name Output nodes (observe via rtl::Simulator::value).
    /// @{
    rtl::NodeId outInputReady;
    rtl::NodeId outOutputToken;
    rtl::NodeId outOutputValid;
    rtl::NodeId outOutputFinished;
    /** Runtime-check output (kNoNode unless insertRuntimeChecks). */
    rtl::NodeId outViolation = rtl::kNoNode;
    /// @}

    int inputTokenWidth;
    int outputTokenWidth;
};

/**
 * Compile a program to RTL. The program must satisfy the static
 * restrictions (lang::checkProgram is re-run defensively).
 */
CompiledUnit compileProgram(const lang::Program &program,
                            const CompileOptions &options = {});

} // namespace compile
} // namespace fleet

#endif // FLEET_COMPILE_COMPILER_H
