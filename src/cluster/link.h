#ifndef FLEET_CLUSTER_LINK_H
#define FLEET_CLUSTER_LINK_H

/**
 * @file
 * The inter-device link model (ISSUE 10): a directed, point-to-point,
 * store-and-forward channel between two simulated devices, modelled the
 * way HPCC-FPGA's `b_eff`/`PTRANS` benchmarks characterize inter-FPGA
 * links — a fixed per-message latency plus a serialization term
 * (bytes / bytesPerCycle), with effective bandwidth emerging from how
 * many bytes are in flight against the credit window.
 *
 * Timing contract. A message offered at cycle `now` is delivered at
 *
 *   txStart  = max(now, end of the previous message's serialization,
 *                  end of a partition window covering the start)
 *   txEnd    = txStart + ceil(bytes / bytesPerCycle)
 *   deliver  = max(txEnd + latencyCycles + spike, previous delivery)
 *
 * The final max enforces in-order delivery even when a seeded latency
 * spike hits one message and not its successor. Everything is computed
 * with integer cycle arithmetic from simulated state only — offer
 * cycles come from the cluster's session clock, which is itself
 * bit-identical across host thread counts and PU backends — so the
 * delivery schedule is deterministic and replayable.
 *
 * Backpressure: the link accepts at most `windowBytes` of
 * accepted-but-undelivered payload. offer() refuses (returns false,
 * counted) past the window; the sender retries on a later cycle. This
 * is the credit mechanism the pipeline layer chains into end-to-end
 * backpressure.
 *
 * Faults (ISSUE 10, folding into the fault layer's idiom): seeded
 * per-message latency spikes (SplitMix64 hash of (seed, sequence
 * number), the same generator discipline as fault/fault.cc) and a
 * partition window [partitionBeginCycle, partitionEndCycle) during
 * which no new serialization may start. Both delay delivery — they
 * never drop or corrupt payload — so containment and requeue machinery
 * above observe them only as latency.
 */

#include <cstdint>
#include <deque>
#include <string>

#include "trace/trace.h"
#include "util/bitbuf.h"

namespace fleet {
namespace cluster {

struct LinkParams
{
    /** Fixed propagation latency added to every message. */
    uint64_t latencyCycles = 500;
    /** Serialization bandwidth; 0 = unlimited (no serialization term —
     * used for same-device pipeline edges). */
    uint64_t bytesPerCycle = 8;
    /** Credit window: max accepted-but-undelivered payload bytes; 0 =
     * unlimited. */
    uint64_t windowBytes = 256 * 1024;
    /** Seed for the per-message spike dice (fault/fault.h idiom). */
    uint64_t seed = 0;
    /** Per-message latency-spike probability, in permille. */
    uint32_t spikePermille = 0;
    /** Extra delivery latency a spiked message suffers. */
    uint64_t spikeCycles = 2000;
    /** Partition window [begin, end): no serialization starts inside
     * it (a transient fabric partition). begin == end = none. */
    uint64_t partitionBeginCycle = 0;
    uint64_t partitionEndCycle = 0;

    /** Link bandwidth in GB/s at `clock_mhz` (for bench metadata). */
    double gbps(double clock_mhz) const
    {
        return double(bytesPerCycle) * clock_mhz * 1e6 / 1e9;
    }
};

/** One message in flight: a chunk of a stream crossing the link. */
struct LinkMessage
{
    uint64_t seq = 0;   ///< Per-link sequence number (spike dice key).
    uint64_t jobId = 0; ///< Pipeline job (or sender-defined) id.
    uint32_t chunkIndex = 0; ///< Position within the stream.
    bool lastChunk = true;   ///< Final chunk of its stream.
    BitBuffer payload;
    uint64_t offerCycle = 0;
    uint64_t deliverCycle = 0;
};

/** Cumulative link accounting; every field is simulated state and
 * participates in the cluster determinism fences. */
struct LinkCounters
{
    uint64_t messagesAccepted = 0;
    uint64_t messagesDelivered = 0;
    /** Wire bytes: per-chunk ceil(bits/8), the serialization unit. */
    uint64_t bytesAccepted = 0;
    uint64_t bytesDelivered = 0;
    /** Exact payload (the conservation-law unit). */
    uint64_t bitsAccepted = 0;
    uint64_t bitsDelivered = 0;
    uint64_t offersRefused = 0; ///< Window-full rejections.
    uint64_t spikes = 0;        ///< Messages hit by a latency spike.
    uint64_t busyCycles = 0;    ///< Serialization cycles consumed.
    uint64_t lastDeliverCycle = 0;
};

bool operator==(const LinkCounters &a, const LinkCounters &b);
inline bool
operator!=(const LinkCounters &a, const LinkCounters &b)
{
    return !(a == b);
}

class Link
{
  public:
    Link(std::string name, const LinkParams &params);

    /**
     * Offer a message at cycle `now` (must be monotonically
     * nondecreasing across calls). Returns false — and counts a
     * refusal — when the credit window cannot take the payload;
     * otherwise schedules delivery per the timing contract above and
     * queues the message in order.
     */
    bool offer(LinkMessage msg, uint64_t now);

    /** True when the oldest in-flight message has arrived by `now`. */
    bool deliverable(uint64_t now) const;

    /** Dequeue the oldest message (call only after deliverable()). */
    LinkMessage pop();

    /** Accepted-but-undelivered payload bytes (window occupancy). */
    uint64_t inFlightBytes() const { return windowUsed_; }
    size_t inFlightMessages() const { return inFlight_.size(); }

    const LinkCounters &counters() const { return counters_; }
    const LinkParams &params() const { return params_; }
    const std::string &name() const { return name_; }

    /** Export the counters as a named trace CounterSet. */
    trace::CounterSet counterSet() const;

  private:
    std::string name_;
    LinkParams params_;
    std::deque<LinkMessage> inFlight_;
    LinkCounters counters_;
    uint64_t nextSeq_ = 0;
    uint64_t lastTxEnd_ = 0;    ///< Serializer free-from cycle.
    uint64_t lastDeliver_ = 0;  ///< In-order delivery floor.
    uint64_t windowUsed_ = 0;   ///< Bytes inside the credit window.
};

} // namespace cluster
} // namespace fleet

#endif // FLEET_CLUSTER_LINK_H
