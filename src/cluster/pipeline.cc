/**
 * @file
 * Pipeline driver (ISSUE 10). Round structure, in fixed order:
 *
 *   deliver -> harvest -> arm -> send -> strand -> stepEpoch
 *
 * deliver first so streams that complete reassembly this round can arm
 * after harvest frees slots; send after harvest so freshly retired
 * outputs start serializing the same round. Every phase walks stages,
 * slots, and edges in ascending index order and takes all timing from
 * the cluster clock — the whole schedule is a pure function of
 * simulated state (see DESIGN.md §5i).
 */

#include "cluster/pipeline.h"

#include <sstream>
#include <utility>

#include "util/logging.h"

namespace fleet {
namespace cluster {

namespace {

/** Copy bits [begin, begin + len) of `src` into a fresh buffer. */
BitBuffer
sliceBits(const BitBuffer &src, uint64_t begin, uint64_t len)
{
    BitBuffer out;
    uint64_t offset = begin;
    uint64_t remaining = len;
    while (remaining > 0) {
        int width = remaining < 64 ? static_cast<int>(remaining) : 64;
        out.appendBits(src.readBits(offset, width), width);
        offset += width;
        remaining -= width;
    }
    return out;
}

} // namespace

Pipeline::Pipeline(std::vector<StageSpec> stages,
                   const PipelineConfig &config)
    : config_(config),
      cluster_([&stages, &config]() {
          if (stages.empty())
              throw StatusError(Status::make(
                  StatusCode::InvalidArgument,
                  "Pipeline: at least one stage required"));
          int num_devices = 0;
          for (size_t s = 0; s < stages.size(); ++s) {
              const StageSpec &stage = stages[s];
              if (stage.device < 0)
                  throw StatusError(Status::make(
                      StatusCode::InvalidArgument,
                      "Pipeline: stage device must be >= 0"));
              if (stage.slots < 1)
                  throw StatusError(Status::make(
                      StatusCode::InvalidArgument,
                      "Pipeline: stage slots must be >= 1"));
              if (s + 1 < stages.size() &&
                  stage.program.outputTokenWidth !=
                      stages[s + 1].program.inputTokenWidth) {
                  std::ostringstream os;
                  os << "Pipeline: stage " << s << " emits "
                     << stage.program.outputTokenWidth
                     << "-bit tokens but stage " << s + 1
                     << " consumes "
                     << stages[s + 1].program.inputTokenWidth
                     << "-bit tokens";
                  throw StatusError(Status::make(
                      StatusCode::InvalidArgument, os.str()));
              }
              if (stage.device + 1 > num_devices)
                  num_devices = stage.device + 1;
          }
          std::vector<DeviceSpec> specs(
              static_cast<size_t>(num_devices));
          for (size_t s = 0; s < stages.size(); ++s) {
              DeviceSpec &spec = specs[stages[s].device];
              uint32_t program_index =
                  static_cast<uint32_t>(spec.programs.size());
              spec.programs.push_back(stages[s].program);
              // Lane = global stage index: the pipeline recovers its
              // slot->stage mapping from slotLane() after the cluster
              // lays slots out device-major.
              for (int i = 0; i < stages[s].slots; ++i)
                  spec.bindings.push_back(system::SlotBinding{
                      program_index, static_cast<int>(s), {}});
              spec.numSlots =
                  static_cast<int>(spec.bindings.size());
          }
          for (size_t d = 0; d < specs.size(); ++d)
              if (specs[d].programs.empty()) {
                  std::ostringstream os;
                  os << "Pipeline: device " << d
                     << " hosts no stage (device indices must be "
                        "contiguous from 0)";
                  throw StatusError(Status::make(
                      StatusCode::InvalidArgument, os.str()));
              }
          return Cluster(std::move(specs), config.system, config.link);
      }())
{
    stages_.resize(stages.size());
    for (size_t s = 0; s < stages.size(); ++s)
        stages_[s].spec = std::move(stages[s]);
    for (int slot = 0; slot < cluster_.numSlots(); ++slot) {
        Stage &stage = stages_[cluster_.slotLane(slot)];
        stage.slots.push_back(slot);
        stage.busy.push_back(false);
        stage.dead.push_back(false);
        stage.job.push_back(0);
    }
    edges_.resize(stages_.size() > 0 ? stages_.size() - 1 : 0);
    for (size_t k = 0; k < edges_.size(); ++k) {
        Edge &edge = edges_[k];
        const int src = stages_[k].spec.device;
        const int dst = stages_[k + 1].spec.device;
        edge.crossDevice = src != dst;
        if (edge.crossDevice) {
            edge.link = &cluster_.link(src, dst);
        } else {
            // Same-device handoff: an output region is re-read as the
            // next stage's input region through DRAM — model it as a
            // free link so one code path serves both placements.
            LinkParams local;
            local.latencyCycles = 0;
            local.bytesPerCycle = 0;
            local.windowBytes = 0;
            local.spikePermille = 0;
            std::ostringstream os;
            os << "edge/" << k << " (local d" << src << ")";
            edge.internal = std::make_unique<Link>(os.str(), local);
            edge.link = edge.internal.get();
        }
    }
    cluster_.beginSession();
}

uint64_t
Pipeline::submit(BitBuffer stream)
{
    if (finished_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "submit: pipeline already finished"));
    uint64_t id = reports_.size();
    PipelineJobReport report;
    report.jobId = id;
    report.submitCycle = cycles();
    report.stageArmCycle.assign(stages_.size(), 0);
    report.stageRetireCycle.assign(stages_.size(), 0);
    reports_.push_back(std::move(report));
    done_.push_back(false);
    inputQueue_.push_back(QueuedStream{id, std::move(stream)});
    return id;
}

void
Pipeline::finishJob(uint64_t job_id, int stage, Status status,
                    BitBuffer output, uint64_t now)
{
    PipelineJobReport &report = reports_[job_id];
    report.status = std::move(status);
    report.failedStage = report.ok() ? -1 : stage;
    report.output = std::move(output);
    report.doneCycle = now;
    done_[job_id] = true;
    ++jobsDone_;
    ++roundEvents_;
}

void
Pipeline::deliver(uint64_t now)
{
    // Pop every arrived chunk. Edges may share one physical link
    // (two cross-device hops between the same pair), so drain each
    // distinct link once, in first-edge order, and route chunks back
    // to their edge by decoding the per-stage arm id.
    std::vector<Link *> drained;
    for (Edge &edge : edges_) {
        bool seen = false;
        for (Link *link : drained)
            seen |= link == edge.link;
        if (seen)
            continue;
        drained.push_back(edge.link);
        while (edge.link->deliverable(now)) {
            LinkMessage msg = edge.link->pop();
            const int k = static_cast<int>(
                msg.jobId % stages_.size());
            const uint64_t job = msg.jobId / stages_.size();
            Edge &e = edges_[k];
            if (!e.reassembling) {
                e.reassembling = true;
                e.reassemblyJob = job;
                e.reassembly = BitBuffer{};
            }
            e.bitsDelivered += msg.payload.sizeBits();
            e.reassembly.appendBuffer(msg.payload);
            ++roundEvents_;
            if (msg.lastChunk) {
                stages_[k + 1].recvQueue.push_back(QueuedStream{
                    e.reassemblyJob, std::move(e.reassembly)});
                e.reassembly = BitBuffer{};
                e.reassembling = false;
                --e.inNetwork;
            }
        }
    }
}

void
Pipeline::harvest(uint64_t now)
{
    const int last = numStages() - 1;
    for (int s = 0; s < numStages(); ++s) {
        Stage &stage = stages_[s];
        for (size_t i = 0; i < stage.slots.size(); ++i) {
            if (!stage.busy[i])
                continue;
            const int slot = stage.slots[i];
            const uint64_t job = stage.job[i];
            if (cluster_.puDrained(slot)) {
                if (s < last &&
                    edges_[s].sendQueue.size() >=
                        static_cast<size_t>(config_.stageQueueDepth)) {
                    // Downstream backpressure: the edge's send queue
                    // is full, so the slot stays busy (its output
                    // region still holds the stream) and stage s
                    // cannot take new work — the stall propagates
                    // upstream through the bounded queues.
                    continue;
                }
                BitBuffer output = cluster_.jobOutput(slot);
                system::RetiredJob retired = cluster_.retireJob(slot);
                PipelineJobReport &report = reports_[job];
                // Pipeline clock, not retired.retireCycle: the shard's
                // own clock parks while a drained slot is held by
                // backpressure, so it cannot see the stall this retire
                // just escaped.
                report.stageRetireCycle[s] = now;
                stage.busy[i] = false;
                ++roundEvents_;
                const Status &status = retired.outcome.status;
                const bool forward =
                    status.code == StatusCode::Ok ||
                    status.code == StatusCode::StreamTruncated;
                if (!forward || s == last) {
                    Status final = status;
                    if (status.code == StatusCode::StreamTruncated &&
                        s == last)
                        final = status;
                    finishJob(job, s, std::move(final),
                              forward ? std::move(output) : BitBuffer{},
                              now);
                    continue;
                }
                // A mid-pipeline truncation still forwards: the stage
                // completed over the truncated prefix, and the final
                // report keeps Ok from the last stage (the truncation
                // is visible in the per-stage counters).
                stage.outBits += output.sizeBits();
                edges_[s].sendQueue.push_back(
                    QueuedStream{job, std::move(output)});
            } else if (cluster_.slotShardState(slot) ==
                       system::ShardState::Halted) {
                std::ostringstream os;
                os << "pipeline job " << job << " stranded at stage "
                   << s << " on halted channel "
                   << cluster_.slotChannel(slot) << ": "
                   << cluster_.slotShardStatus(slot).toString();
                finishJob(job, s,
                          Status::make(
                              cluster_.slotShardStatus(slot).code,
                              os.str()),
                          BitBuffer{}, now);
                stage.busy[i] = false;
                stage.dead[i] = true;
            }
        }
    }
}

void
Pipeline::armStages(uint64_t now)
{
    for (int s = 0; s < numStages(); ++s) {
        Stage &stage = stages_[s];
        std::deque<QueuedStream> &queue =
            s == 0 ? inputQueue_ : stage.recvQueue;
        for (size_t i = 0; i < stage.slots.size() && !queue.empty();
             ++i) {
            if (stage.busy[i] || stage.dead[i])
                continue;
            const int slot = stage.slots[i];
            if (cluster_.slotShardState(slot) ==
                system::ShardState::Halted) {
                stage.dead[i] = true;
                continue;
            }
            QueuedStream next = std::move(queue.front());
            queue.pop_front();
            const uint64_t stream_bits = next.stream.sizeBits();
            // Per-stage arm id: decorrelates the fault plan's per-job
            // dice across stages and lets link chunks name their edge.
            const uint64_t arm_id =
                next.jobId * stages_.size() + static_cast<uint64_t>(s);
            Status armed = cluster_.armJob(
                slot, std::move(next.stream), arm_id);
            if (!armed.ok()) {
                finishJob(next.jobId, s, std::move(armed), BitBuffer{},
                          now);
                // This slot is still free; let it look at the next
                // queued stream this round.
                --i;
                continue;
            }
            stage.busy[i] = true;
            stage.job[i] = next.jobId;
            stage.inBits += stream_bits;
            reports_[next.jobId].stageArmCycle[s] = now;
            ++roundEvents_;
        }
    }
}

void
Pipeline::send(uint64_t now)
{
    for (size_t k = 0; k < edges_.size(); ++k) {
        Edge &edge = edges_[k];
        const uint64_t chunk_bits =
            config_.chunkBytes ? config_.chunkBytes * 8 : ~0ULL;
        for (;;) {
            if (!edge.sending) {
                if (edge.sendQueue.empty())
                    break;
                // Receiver credit: queued + in-network streams ahead
                // of stage k+1 must stay under the depth bound, so
                // the receive queue can always absorb what the link
                // delivers.
                if (stages_[k + 1].recvQueue.size() +
                        static_cast<size_t>(edge.inNetwork) >=
                    static_cast<size_t>(config_.stageQueueDepth))
                    break;
                edge.sending = std::move(edge.sendQueue.front());
                edge.sendQueue.pop_front();
                edge.sendOffsetBits = 0;
                edge.sendChunkIndex = 0;
                ++edge.inNetwork;
            }
            const uint64_t total = edge.sending->stream.sizeBits();
            const uint64_t remaining = total - edge.sendOffsetBits;
            const uint64_t len =
                remaining < chunk_bits ? remaining : chunk_bits;
            LinkMessage msg;
            msg.jobId = edge.sending->jobId * stages_.size() + k;
            msg.chunkIndex = edge.sendChunkIndex;
            msg.lastChunk = edge.sendOffsetBits + len >= total;
            msg.payload =
                sliceBits(edge.sending->stream, edge.sendOffsetBits,
                          len);
            if (!edge.link->offer(std::move(msg), now))
                break; // Window full; resume next round.
            edge.bitsAccepted += len;
            if (edge.crossDevice)
                reports_[edge.sending->jobId].linkBits += len;
            edge.sendOffsetBits += len;
            ++edge.sendChunkIndex;
            ++roundEvents_;
            if (edge.sendOffsetBits >= total)
                edge.sending.reset();
        }
    }
}

void
Pipeline::strandStageless(uint64_t now)
{
    for (int s = 0; s < numStages(); ++s) {
        Stage &stage = stages_[s];
        bool any_live = false;
        for (size_t i = 0; i < stage.slots.size(); ++i)
            any_live |= !stage.dead[i];
        if (any_live)
            continue;
        std::deque<QueuedStream> &queue =
            s == 0 ? inputQueue_ : stage.recvQueue;
        while (!queue.empty()) {
            QueuedStream next = std::move(queue.front());
            queue.pop_front();
            std::ostringstream os;
            os << "pipeline job " << next.jobId
               << " cannot run: stage " << s
               << " has no live slots (every hosting channel halted)";
            finishJob(next.jobId, s,
                      Status::make(StatusCode::InvalidState, os.str()),
                      BitBuffer{}, now);
        }
    }
}

bool
Pipeline::step()
{
    if (finished_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "step: pipeline already finished"));
    if (jobsDone_ == reports_.size())
        return false;
    now_ = cycles();
    const uint64_t now = now_;
    roundEvents_ = 0;
    deliver(now);
    harvest(now);
    armStages(now);
    send(now);
    strandStageless(now);
    if (jobsDone_ == reports_.size())
        return false;
    const uint64_t before = cluster_.cycles();
    cluster_.stepEpoch(config_.epochCycles);
    if (roundEvents_ > 0 || cluster_.cycles() > before) {
        idleRounds_ = 0;
        return true;
    }
    // No events and no device advanced its clock: every shard is
    // parked (free, or drained and held by backpressure). If a stream
    // is still crossing a link, simulated time must pass *here*,
    // against the link's latency — the shard clocks have frozen short
    // of the delivery cycle and will never reach it on their own.
    bool wire_busy = false;
    for (const Edge &edge : edges_)
        wire_busy |= edge.link->inFlightMessages() > 0;
    if (wire_busy) {
        now_ += config_.epochCycles;
        idleRounds_ = 0;
        return true;
    }
    if (++idleRounds_ > config_.maxIdleRounds) {
        // Liveness backstop: nothing armed, retired, sent, arrived,
        // computed, or crossed a link for a very long time. Strand
        // what remains instead of spinning.
        for (uint64_t id = 0; id < reports_.size(); ++id) {
            if (done_[id])
                continue;
            finishJob(id, -1,
                      Status::make(
                          StatusCode::InternalError,
                          "pipeline made no progress for " +
                              std::to_string(idleRounds_) +
                              " rounds; stranding job"),
                      BitBuffer{}, now);
        }
        return false;
    }
    return jobsDone_ < reports_.size();
}

void
Pipeline::run()
{
    while (step()) {
    }
}

const ClusterReport &
Pipeline::finish()
{
    if (!finished_) {
        run();
        finished_ = true;
    }
    return cluster_.finishSession();
}

const PipelineJobReport &
Pipeline::report(uint64_t job_id) const
{
    if (job_id >= reports_.size() || !done_[job_id])
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "report: pipeline job has not finished"));
    return reports_[job_id];
}

Pipeline::EdgeConservation
Pipeline::edgeConservation(int edge) const
{
    const Edge &e = edges_[edge];
    EdgeConservation law;
    law.stageOutBits = stages_[edge].outBits;
    law.linkBitsAccepted = e.bitsAccepted;
    law.linkBitsDelivered = e.bitsDelivered;
    law.stageInBits = stages_[edge + 1].inBits;
    law.crossDevice = e.crossDevice;
    return law;
}

} // namespace cluster
} // namespace fleet
