#ifndef FLEET_CLUSTER_CLUSTER_H
#define FLEET_CLUSTER_CLUSTER_H

/**
 * @file
 * The cluster layer (ISSUE 10): N simulated devices — each a
 * session-mode FleetSystem behind the system::Device interface — plus
 * a directed Link (link.h) between every ordered device pair, exposed
 * to the runtime as ONE device-shaped pool under *global* slot and
 * channel indices (device-major: device 0's slots first).
 *
 * Design rule: the Cluster adds indexing, links, and report assembly —
 * never behaviour. Every session-protocol call forwards to exactly one
 * device, and stepEpoch steps the devices in fixed (device-index)
 * order, so a 1-device cluster is *cycle-exact* with driving the
 * underlying FleetSystem directly, and an N-device schedule is a pure
 * function of simulated state: bit-identical across host thread
 * counts, PU backends, and — because devices share nothing except the
 * links, which are driven only at round boundaries — device stepping
 * order. The cluster tests pin all three.
 *
 * Clocks: each device keeps its own session clock (max over its
 * shards; a parked device's clock lags). The cluster clock is the max
 * over devices, and is what link offer/delivery cycles are computed
 * against.
 */

#include <memory>
#include <string>
#include <vector>

#include "cluster/link.h"
#include "system/fleet_system.h"

namespace fleet {
namespace cluster {

/** One device's share of the cluster (programs + slot pool). */
struct DeviceSpec
{
    std::vector<lang::Program> programs;
    int numSlots = 8;
    /** Per-slot bindings (empty = all slots run programs[0]). */
    std::vector<system::SlotBinding> bindings;
};

/**
 * The settled result of a cluster session: one RunReport per device
 * (device 0 carries the scheduler's session tracks, so a 1-device
 * ClusterReport's devices[0] equals the legacy Session RunReport
 * bit-for-bit) plus the link fabric's counters and utilization tracks.
 * Everything is simulated state; operator== fences it all.
 */
struct ClusterReport
{
    std::vector<system::RunReport> devices;
    /** One CounterSet per directed link, in (src, dst) order. */
    std::vector<trace::CounterSet> linkCounters;
    /** Events mode: per-link window-occupancy tracks, sampled at
     * round boundaries on the cluster clock. */
    std::vector<trace::CounterTrack> linkTracks;

    bool allOk() const;
    std::string summary() const;

    /**
     * Write a merged Chrome trace: every device's channels as process
     * rows labelled "dev<d>/channel <c>" (with channel pids offset so
     * devices never collide), the session tracks, and the link tracks.
     * Fails with InvalidArgument when events were not recorded.
     */
    Status writeTrace(const std::string &path) const;
};

bool operator==(const ClusterReport &a, const ClusterReport &b);
inline bool
operator!=(const ClusterReport &a, const ClusterReport &b)
{
    return !(a == b);
}

class Cluster
{
  public:
    /** Heterogeneous cluster: one spec per device. `system` supplies
     * the shared channel/DRAM/backend/trace/fault configuration;
     * `link` models every inter-device edge. */
    Cluster(std::vector<DeviceSpec> devices,
            const system::SystemConfig &system, const LinkParams &link);

    /** Homogeneous scale-out (the Session ctor path): `num_devices`
     * identical devices, each hosting `programs` on `slots_per_device`
     * slots bound per `bindings`. */
    Cluster(std::vector<lang::Program> programs,
            const system::SystemConfig &system, int slots_per_device,
            std::vector<system::SlotBinding> bindings, int num_devices,
            const LinkParams &link);

    Cluster(Cluster &&) = default;
    Cluster &operator=(Cluster &&) = default;

    int numDevices() const { return static_cast<int>(devices_.size()); }
    system::Device &device(int d) { return *devices_[d]; }
    const system::Device &device(int d) const { return *devices_[d]; }
    /** The concrete simulator under device `d` (offline inspection). */
    system::FleetSystem &deviceSystem(int d) { return *devices_[d]; }
    const system::FleetSystem &deviceSystem(int d) const
    {
        return *devices_[d];
    }

    /** Directed link src -> dst (src != dst). */
    Link &link(int src, int dst);
    const Link &link(int src, int dst) const;

    /// @name Global slot / channel indexing (device-major).
    /// @{
    int numSlots() const { return static_cast<int>(slotDevice_.size()); }
    int slotDevice(int slot) const { return slotDevice_[slot]; }
    int slotLocal(int slot) const { return slotLocal_[slot]; }
    int numChannels() const
    {
        return static_cast<int>(channelDevice_.size());
    }
    int channelDevice(int c) const { return channelDevice_[c]; }
    int channelLocal(int c) const { return channelLocal_[c]; }
    /** Global channel owning global slot `slot`. */
    int slotChannel(int slot) const
    {
        return channelBase_[slotDevice_[slot]] +
               devices_[slotDevice_[slot]]->puChannel(slotLocal_[slot]);
    }
    /// @}

    /// @name The session protocol, lifted to global indices.
    /// @{
    void beginSession();
    Status armJob(int slot, BitBuffer stream, uint64_t job_id);
    /** Step every device one epoch, in device order, then sample the
     * link tracks (events mode). */
    void stepEpoch(uint64_t epoch_cycles);
    bool puDrained(int slot) const;
    system::ShardState slotShardState(int slot) const;
    const Status &slotShardStatus(int slot) const;
    BitBuffer jobOutput(int slot) const;
    system::RetiredJob retireJob(int slot);
    Status cancelJob(int slot, Status status);
    void forceHaltChannel(int global_channel, Status status);
    void setSessionTracks(std::vector<trace::CounterTrack> tracks);
    /** Settle every device and assemble the ClusterReport. Once. */
    const ClusterReport &finishSession();
    /// @}

    /** The cluster clock: max over device session clocks. */
    uint64_t cycles() const;
    /** Live cycle count of a global channel's shard. */
    uint64_t channelCycles(int global_channel) const;

    uint32_t slotProgramIndex(int slot) const
    {
        return devices_[slotDevice_[slot]]->slotProgramIndex(
            slotLocal_[slot]);
    }
    int slotLane(int slot) const
    {
        return devices_[slotDevice_[slot]]->slotLane(slotLocal_[slot]);
    }
    /** Program-index space of device 0. Homogeneous clusters (the
     * Session path) bind every device identically, so this is the
     * cluster-wide program space; heterogeneous clusters (pipelines)
     * do their own per-device mapping. */
    int numPrograms() const { return devices_[0]->numPrograms(); }

  private:
    void buildIndex();

    std::vector<std::unique_ptr<system::FleetSystem>> devices_;
    system::SystemConfig systemConfig_;
    LinkParams linkParams_;
    /** Directed links in (src, dst) lexicographic order, src != dst. */
    std::vector<std::unique_ptr<Link>> links_;
    std::vector<trace::CounterTrack> linkTracks_;
    std::vector<int> slotDevice_;
    std::vector<int> slotLocal_;
    std::vector<int> slotBase_; ///< First global slot per device.
    std::vector<int> channelDevice_;
    std::vector<int> channelLocal_;
    std::vector<int> channelBase_; ///< First global channel per device.
    ClusterReport report_;
    bool finished_ = false;
};

} // namespace cluster
} // namespace fleet

#endif // FLEET_CLUSTER_CLUSTER_H
