#ifndef FLEET_CLUSTER_PIPELINE_H
#define FLEET_CLUSTER_PIPELINE_H

/**
 * @file
 * Dataflow pipeline composition (ISSUE 10): chain Fleet programs so
 * one stage's output stream becomes the next stage's input stream —
 * on the same device or across the modelled inter-device link — the
 * TAPA/StreamBlocks shape of inter-kernel streaming, built on top of
 * the Cluster layer rather than inside the RTL.
 *
 * Granularity: stages exchange whole streams (store-and-forward per
 * job), not tokens — each stage is an unmodified Fleet program whose
 * per-job semantics stay exactly those of a standalone run, so a
 * pipeline's final output equals the sequential composition of its
 * stages run one-shot (the pipeline tests assert this). Pipelining
 * happens *across jobs*: while job j's stream crosses the link to
 * stage k+1, job j+1 is already running on stage k.
 *
 * Backpressure propagates end to end through bounded buffers:
 *
 *   stage k+1's receive queue is bounded (stageQueueDepth) — a sender
 *   may only start a stream onto the edge when the receiver has a
 *   free credit (queued + in-network < depth); the edge's send queue
 *   is bounded the same way — a drained stage-k slot is NOT retired
 *   until the send queue has room, which keeps the slot busy, which
 *   stalls stage k's arm loop, which backs the input queue up to the
 *   submitter. A slow or partitioned link therefore throttles every
 *   stage upstream of it, deterministically.
 *
 * Conservation law (asserted by the cluster trace-counters tests):
 * for every edge k, bits out of stage k == bits accepted by the edge
 * == bits delivered by the edge == bits into stage k+1 (failed jobs
 * complete at their failing stage and are never forwarded, so they
 * contribute to no edge).
 *
 * Determinism: the round loop below touches links and devices only at
 * round boundaries in fixed stage order, with all timing derived from
 * the cluster clock — bit-identical across host thread counts and PU
 * backends, like everything beneath it.
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster.h"

namespace fleet {
namespace cluster {

/** One pipeline stage: a program placed on a device with a slot pool. */
struct StageSpec
{
    lang::Program program;
    /** Device hosting the stage (devices are created 0..max named). */
    int device = 0;
    /** Parallel slots the stage runs on (round-robin over jobs). */
    int slots = 1;
};

struct PipelineConfig
{
    /** Per-device channel/DRAM/backend/trace/fault configuration. */
    system::SystemConfig system;
    /** Model for every inter-device edge. Same-device edges bypass it
     * (zero latency, unlimited bandwidth — a DRAM-to-DRAM handoff). */
    LinkParams link;
    uint64_t epochCycles = 2048;
    /** Link MTU: streams cross the link in chunks of this many bytes,
     * so a big stream's serialization overlaps with delivery. */
    uint64_t chunkBytes = 4096;
    /** Per-stage stream credits: bound on queued + in-network streams
     * ahead of each stage (and on each edge's send queue). */
    int stageQueueDepth = 4;
    /** Liveness guard: rounds with zero progress (nothing armed,
     * retired, sent, or delivered) before the pipeline declares
     * itself wedged and strands the remaining jobs. Must exceed
     * linkLatency/epochCycles and any partition window. */
    uint64_t maxIdleRounds = 1 << 16;
};

/** Final, per-job pipeline result. Everything simulated is
 * deterministic and participates in the pipeline tests' fences. */
struct PipelineJobReport
{
    uint64_t jobId = 0;
    /** Ok / StreamTruncated, or the failing stage's status. */
    Status status;
    /** Stage the status came from (-1: never armed anywhere). */
    int failedStage = -1;
    /** Final stage's flushed output (empty on failure). */
    BitBuffer output;
    uint64_t submitCycle = 0;
    uint64_t doneCycle = 0;
    /** Per-stage arm/retire cycles on the pipeline clock (cycles());
     * 0 for stages the job never reached. */
    std::vector<uint64_t> stageArmCycle;
    std::vector<uint64_t> stageRetireCycle;
    /** Payload bits this job pushed across inter-device links. */
    uint64_t linkBits = 0;

    bool ok() const
    {
        return status.code == StatusCode::Ok ||
               status.code == StatusCode::StreamTruncated;
    }
    uint64_t totalCycles() const
    {
        return doneCycle > submitCycle ? doneCycle - submitCycle : 0;
    }
};

class Pipeline
{
  public:
    /**
     * Build the cluster (max named device + 1 devices; stages sharing
     * a device become one multi-program FleetSystem, so they must
     * share token widths — cross-device stages need not) and validate
     * chaining: stage k's outputTokenWidth must equal stage k+1's
     * inputTokenWidth, or this throws StatusError(InvalidArgument).
     */
    Pipeline(std::vector<StageSpec> stages, const PipelineConfig &config);

    /** Enqueue a stream for stage 0; returns the job id (from 0). */
    uint64_t submit(BitBuffer stream);

    /** One pipeline round; true while any job lacks a final report. */
    bool step();

    /** Run rounds until every submitted job has a report. */
    void run();

    /** Settle the cluster and return its report (call once, last). */
    const ClusterReport &finish();

    const PipelineJobReport &report(uint64_t job_id) const;
    const std::vector<PipelineJobReport> &reports() const
    {
        return reports_;
    }

    int numStages() const { return static_cast<int>(stages_.size()); }
    /** The pipeline clock: the cluster clock, plus the epochs spent
     * waiting on the wire while every device was idle (see now_). */
    uint64_t cycles() const
    {
        uint64_t cluster_cycles = cluster_.cycles();
        return now_ > cluster_cycles ? now_ : cluster_cycles;
    }
    Cluster &cluster() { return cluster_; }
    const Cluster &cluster() const { return cluster_; }

    /** The conservation-law view of edge k (stage k -> k+1). */
    struct EdgeConservation
    {
        uint64_t stageOutBits = 0;      ///< Retired out of stage k.
        uint64_t linkBitsAccepted = 0;  ///< Offered onto the edge.
        uint64_t linkBitsDelivered = 0; ///< Arrived at stage k+1.
        uint64_t stageInBits = 0;       ///< Armed into stage k+1.
        bool crossDevice = false;
    };
    EdgeConservation edgeConservation(int edge) const;

  private:
    /** A stream queued in front of a stage. */
    struct QueuedStream
    {
        uint64_t jobId = 0;
        BitBuffer stream;
    };

    /** One stage's slot pool + receive queue. */
    struct Stage
    {
        StageSpec spec;
        std::vector<int> slots;    ///< Global cluster slot ids.
        std::vector<bool> busy;    ///< Parallel to slots.
        std::vector<bool> dead;    ///< Channel halted under the slot.
        std::vector<uint64_t> job; ///< Armed job id, parallel to slots.
        std::deque<QueuedStream> recvQueue;
        uint64_t inBits = 0;  ///< Armed into this stage.
        uint64_t outBits = 0; ///< Retired and forwarded downstream.
    };

    /** Edge k: stage k -> stage k+1 over a link. */
    struct Edge
    {
        Link *link = nullptr; ///< Cluster link or `internal`.
        std::unique_ptr<Link> internal; ///< Same-device transport.
        bool crossDevice = false;
        std::deque<QueuedStream> sendQueue;
        /** Stream currently serializing onto the link. */
        std::optional<QueuedStream> sending;
        uint64_t sendOffsetBits = 0;
        uint32_t sendChunkIndex = 0;
        /** Streams that left the send queue but have not yet landed in
         * the receiver's queue (the in-network credit share). */
        int inNetwork = 0;
        /** Receiver-side reassembly of the in-flight stream. */
        bool reassembling = false;
        uint64_t reassemblyJob = 0;
        BitBuffer reassembly;
        uint64_t bitsAccepted = 0;
        uint64_t bitsDelivered = 0;
    };

    void deliver(uint64_t now);
    void harvest(uint64_t now);
    void armStages(uint64_t now);
    void send(uint64_t now);
    void finishJob(uint64_t job_id, int stage, Status status,
                   BitBuffer output, uint64_t now);
    void strandStageless(uint64_t now);

    std::vector<Stage> stages_;
    std::vector<Edge> edges_;
    PipelineConfig config_;
    Cluster cluster_;
    std::deque<QueuedStream> inputQueue_;
    std::vector<PipelineJobReport> reports_;
    std::vector<bool> done_;
    uint64_t jobsDone_ = 0;
    /**
     * The pipeline's monotonic clock: max of the cluster clock and the
     * time spent waiting on the wire. Device clocks park when their
     * shards go idle, so when every slot is free while a stream is
     * still crossing a link (its delivery cycle not yet reached), the
     * cluster clock alone would freeze short of the delivery time.
     * Each such round advances now_ by one epoch — simulated time
     * passing against the link's latency, not any shard — keeping the
     * whole schedule a pure function of simulated state.
     */
    uint64_t now_ = 0;
    uint64_t idleRounds_ = 0;
    /** Progress markers for the liveness guard, reset each round. */
    uint64_t roundEvents_ = 0;
    bool finished_ = false;
};

} // namespace cluster
} // namespace fleet

#endif // FLEET_CLUSTER_PIPELINE_H
