#include "cluster/link.h"

#include <utility>

namespace fleet {
namespace cluster {

namespace {

/** SplitMix64 finalizer — the same mixing discipline fault/fault.cc
 * uses, duplicated here because those helpers are file-local. */
uint64_t
mix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Per-message spike dice: hash of (seed, sequence number). */
uint64_t
spikeHash(uint64_t seed, uint64_t seq)
{
    return mix64(mix64(seed ^ 0xc2b2ae3d27d4eb4fULL) ^
                 (seq + 0x6a09e667f3bcc909ULL));
}

/** True with probability rate/denominator, from a uniform hash. */
bool
chance(uint64_t hash, uint32_t rate, uint64_t denominator)
{
    if (rate == 0)
        return false;
    return hash % denominator < rate;
}

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

bool
operator==(const LinkCounters &a, const LinkCounters &b)
{
    return a.messagesAccepted == b.messagesAccepted &&
           a.messagesDelivered == b.messagesDelivered &&
           a.bytesAccepted == b.bytesAccepted &&
           a.bytesDelivered == b.bytesDelivered &&
           a.bitsAccepted == b.bitsAccepted &&
           a.bitsDelivered == b.bitsDelivered &&
           a.offersRefused == b.offersRefused &&
           a.spikes == b.spikes && a.busyCycles == b.busyCycles &&
           a.lastDeliverCycle == b.lastDeliverCycle;
}

Link::Link(std::string name, const LinkParams &params)
    : name_(std::move(name)), params_(params)
{
}

bool
Link::offer(LinkMessage msg, uint64_t now)
{
    const uint64_t bytes = ceilDiv(msg.payload.sizeBits(), 8);
    if (params_.windowBytes != 0 &&
        windowUsed_ + bytes > params_.windowBytes &&
        // A message larger than the whole window must still pass once
        // the link is empty, or it could never cross at all.
        !(windowUsed_ == 0 && bytes > params_.windowBytes)) {
        ++counters_.offersRefused;
        return false;
    }

    // Serialization start: after the previous message finishes, and
    // never inside a partition window.
    uint64_t tx_start = now > lastTxEnd_ ? now : lastTxEnd_;
    if (params_.partitionEndCycle > params_.partitionBeginCycle &&
        tx_start >= params_.partitionBeginCycle &&
        tx_start < params_.partitionEndCycle) {
        tx_start = params_.partitionEndCycle;
    }
    const uint64_t tx_cycles =
        params_.bytesPerCycle ? ceilDiv(bytes, params_.bytesPerCycle)
                              : 0;
    lastTxEnd_ = tx_start + tx_cycles;

    uint64_t spike = 0;
    if (chance(spikeHash(params_.seed, nextSeq_),
               params_.spikePermille, 1000)) {
        spike = params_.spikeCycles;
        ++counters_.spikes;
    }
    uint64_t deliver = lastTxEnd_ + params_.latencyCycles + spike;
    // In-order delivery even when only the predecessor spiked.
    if (deliver < lastDeliver_)
        deliver = lastDeliver_;
    lastDeliver_ = deliver;

    msg.seq = nextSeq_++;
    msg.offerCycle = now;
    msg.deliverCycle = deliver;
    windowUsed_ += bytes;
    ++counters_.messagesAccepted;
    counters_.bytesAccepted += bytes;
    counters_.bitsAccepted += msg.payload.sizeBits();
    counters_.busyCycles += tx_cycles;
    inFlight_.push_back(std::move(msg));
    return true;
}

bool
Link::deliverable(uint64_t now) const
{
    return !inFlight_.empty() && inFlight_.front().deliverCycle <= now;
}

LinkMessage
Link::pop()
{
    LinkMessage msg = std::move(inFlight_.front());
    inFlight_.pop_front();
    const uint64_t bytes = ceilDiv(msg.payload.sizeBits(), 8);
    windowUsed_ -= bytes;
    ++counters_.messagesDelivered;
    counters_.bytesDelivered += bytes;
    counters_.bitsDelivered += msg.payload.sizeBits();
    counters_.lastDeliverCycle = msg.deliverCycle;
    return msg;
}

trace::CounterSet
Link::counterSet() const
{
    trace::CounterSet set;
    set.name = name_;
    set.set("messages_accepted", counters_.messagesAccepted);
    set.set("messages_delivered", counters_.messagesDelivered);
    set.set("bytes_accepted", counters_.bytesAccepted);
    set.set("bytes_delivered", counters_.bytesDelivered);
    set.set("payload_bits_accepted", counters_.bitsAccepted);
    set.set("payload_bits_delivered", counters_.bitsDelivered);
    set.set("offers_refused", counters_.offersRefused);
    set.set("latency_spikes", counters_.spikes);
    set.set("busy_cycles", counters_.busyCycles);
    set.set("last_deliver_cycle", counters_.lastDeliverCycle);
    return set;
}

} // namespace cluster
} // namespace fleet
