/**
 * @file
 * Cluster implementation (ISSUE 10). Pure indexing + forwarding: the
 * only logic here is global<->local index translation, fixed-order
 * device stepping, link-track sampling, and report assembly — no
 * scheduling decisions (those stay in runtime::Session) and no timing
 * (that stays in ChannelShard and Link).
 */

#include "cluster/cluster.h"

#include <sstream>
#include <utility>

#include "util/logging.h"

namespace fleet {
namespace cluster {

namespace {

std::string
linkName(int src, int dst)
{
    std::ostringstream os;
    os << "link/d" << src << "->d" << dst;
    return os.str();
}

/** Append a (cycle, value) sample, deduplicating repeats. */
void
sampleTrack(trace::CounterTrack &track, uint64_t cycle, uint64_t value)
{
    if (!track.samples.empty() && track.samples.back().second == value)
        return;
    track.samples.emplace_back(cycle, value);
}

std::vector<DeviceSpec>
uniformSpecs(std::vector<lang::Program> programs, int slots_per_device,
             std::vector<system::SlotBinding> bindings, int num_devices)
{
    if (num_devices < 1)
        panic("Cluster: numDevices must be >= 1, got ", num_devices);
    std::vector<DeviceSpec> specs(static_cast<size_t>(num_devices));
    for (DeviceSpec &spec : specs) {
        spec.programs = programs;
        spec.numSlots = slots_per_device;
        spec.bindings = bindings;
    }
    return specs;
}

} // namespace

bool
ClusterReport::allOk() const
{
    for (const system::RunReport &device : devices)
        if (!device.allOk())
            return false;
    return true;
}

std::string
ClusterReport::summary() const
{
    std::ostringstream os;
    for (size_t d = 0; d < devices.size(); ++d)
        os << "dev" << d << ": " << devices[d].summary()
           << (d + 1 < devices.size() ? "\n" : "");
    return os.str();
}

bool
operator==(const ClusterReport &a, const ClusterReport &b)
{
    return a.devices == b.devices &&
           a.linkCounters == b.linkCounters &&
           a.linkTracks == b.linkTracks;
}

Cluster::Cluster(std::vector<DeviceSpec> devices,
                 const system::SystemConfig &system,
                 const LinkParams &link)
    : systemConfig_(system), linkParams_(link)
{
    if (devices.empty())
        panic("Cluster: at least one device required");
    for (DeviceSpec &spec : devices)
        devices_.push_back(std::make_unique<system::FleetSystem>(
            std::move(spec.programs), system, spec.numSlots,
            std::move(spec.bindings)));
    const int n = numDevices();
    for (int src = 0; src < n; ++src)
        for (int dst = 0; dst < n; ++dst)
            if (src != dst)
                links_.push_back(std::make_unique<Link>(
                    linkName(src, dst), link));
    linkTracks_.resize(links_.size());
    for (size_t l = 0; l < links_.size(); ++l)
        linkTracks_[l].name = links_[l]->name() + "/inflight_bytes";
    buildIndex();
}

Cluster::Cluster(std::vector<lang::Program> programs,
                 const system::SystemConfig &system, int slots_per_device,
                 std::vector<system::SlotBinding> bindings,
                 int num_devices, const LinkParams &link)
    : Cluster(uniformSpecs(std::move(programs), slots_per_device,
                           std::move(bindings), num_devices),
              system, link)
{
}

void
Cluster::buildIndex()
{
    slotBase_.clear();
    channelBase_.clear();
    for (size_t d = 0; d < devices_.size(); ++d) {
        slotBase_.push_back(static_cast<int>(slotDevice_.size()));
        channelBase_.push_back(static_cast<int>(channelDevice_.size()));
        for (int p = 0; p < devices_[d]->numPus(); ++p) {
            slotDevice_.push_back(static_cast<int>(d));
            slotLocal_.push_back(p);
        }
        for (int c = 0; c < devices_[d]->numShards(); ++c) {
            channelDevice_.push_back(static_cast<int>(d));
            channelLocal_.push_back(c);
        }
    }
}

Link &
Cluster::link(int src, int dst)
{
    return const_cast<Link &>(
        static_cast<const Cluster *>(this)->link(src, dst));
}

const Link &
Cluster::link(int src, int dst) const
{
    const int n = numDevices();
    if (src == dst || src < 0 || dst < 0 || src >= n || dst >= n)
        panic("Cluster::link: bad endpoint pair (", src, ", ", dst, ")");
    // Links are stored in (src, dst) lexicographic order with the
    // diagonal removed: src contributes (n - 1) entries.
    int index = src * (n - 1) + dst - (dst > src ? 1 : 0);
    return *links_[index];
}

void
Cluster::beginSession()
{
    for (auto &device : devices_)
        device->beginSession();
}

Status
Cluster::armJob(int slot, BitBuffer stream, uint64_t job_id)
{
    return devices_[slotDevice_[slot]]->armJob(
        slotLocal_[slot], std::move(stream), job_id);
}

void
Cluster::stepEpoch(uint64_t epoch_cycles)
{
    // Fixed device order. Devices share no state (links are driven
    // only between epochs, by the layer above), so this order is
    // unobservable in the results — the determinism tests pin it by
    // comparing against a reversed-stepping driver.
    for (auto &device : devices_)
        device->stepEpoch(epoch_cycles);
    if (systemConfig_.trace.events && !links_.empty()) {
        const uint64_t now = cycles();
        for (size_t l = 0; l < links_.size(); ++l)
            sampleTrack(linkTracks_[l], now,
                        links_[l]->inFlightBytes());
    }
}

bool
Cluster::puDrained(int slot) const
{
    return devices_[slotDevice_[slot]]->puDrained(slotLocal_[slot]);
}

system::ShardState
Cluster::slotShardState(int slot) const
{
    return devices_[slotDevice_[slot]]->puShardState(slotLocal_[slot]);
}

const Status &
Cluster::slotShardStatus(int slot) const
{
    return devices_[slotDevice_[slot]]->puShardStatus(slotLocal_[slot]);
}

BitBuffer
Cluster::jobOutput(int slot) const
{
    return devices_[slotDevice_[slot]]->jobOutput(slotLocal_[slot]);
}

system::RetiredJob
Cluster::retireJob(int slot)
{
    return devices_[slotDevice_[slot]]->retireJob(slotLocal_[slot]);
}

Status
Cluster::cancelJob(int slot, Status status)
{
    return devices_[slotDevice_[slot]]->cancelJob(slotLocal_[slot],
                                                  std::move(status));
}

void
Cluster::forceHaltChannel(int global_channel, Status status)
{
    devices_[channelDevice_[global_channel]]->forceHaltChannel(
        channelLocal_[global_channel], std::move(status));
}

void
Cluster::setSessionTracks(std::vector<trace::CounterTrack> tracks)
{
    // Device 0 carries the scheduler tracks so a 1-device cluster's
    // devices[0] report is bit-identical to the legacy Session report.
    devices_[0]->setSessionTracks(std::move(tracks));
}

const ClusterReport &
Cluster::finishSession()
{
    if (finished_)
        return report_;
    finished_ = true;
    for (auto &device : devices_)
        report_.devices.push_back(device->finishSession());
    for (const auto &link : links_)
        report_.linkCounters.push_back(link->counterSet());
    report_.linkTracks = std::move(linkTracks_);
    return report_;
}

uint64_t
Cluster::cycles() const
{
    uint64_t max_cycles = 0;
    for (const auto &device : devices_) {
        uint64_t cycles = device->sessionCycles();
        if (cycles > max_cycles)
            max_cycles = cycles;
    }
    return max_cycles;
}

uint64_t
Cluster::channelCycles(int global_channel) const
{
    return devices_[channelDevice_[global_channel]]->shardCycles(
        channelLocal_[global_channel]);
}

Status
ClusterReport::writeTrace(const std::string &path) const
{
    // Merge the device traces into one report: channel ids offset to
    // the global index space, process rows labelled per device, and
    // counter-set names prefixed so "ch0/dram" on two devices cannot
    // collide. Session tracks (device 0) and link tracks ride along.
    trace::TraceReport merged;
    bool any = false;
    int channel_base = 0;
    for (size_t d = 0; d < devices.size(); ++d) {
        const auto &trace = devices[d].trace;
        if (!trace) {
            continue;
        }
        any = true;
        merged.config = trace->config;
        merged.clockMHz = trace->clockMHz;
        for (const trace::ChannelTrace &channel : trace->channels) {
            trace::ChannelTrace copy = channel;
            std::ostringstream label;
            label << "dev" << d << "/channel " << channel.channel;
            copy.label = label.str();
            copy.channel = channel_base + channel.channel;
            std::ostringstream prefix;
            prefix << "dev" << d << "/";
            for (trace::CounterSet &set : copy.counters)
                set.name = prefix.str() + set.name;
            merged.channels.push_back(std::move(copy));
        }
        for (const trace::CounterTrack &track : trace->sessionTracks)
            merged.sessionTracks.push_back(track);
        channel_base += static_cast<int>(trace->channels.size());
    }
    if (!any)
        return Status::make(StatusCode::InvalidArgument,
                            "ClusterReport::writeTrace: no device "
                            "recorded a trace (enable "
                            "TraceConfig::events)");
    for (const trace::CounterTrack &track : linkTracks)
        merged.sessionTracks.push_back(track);
    return merged.writeChromeTrace(path);
}

} // namespace cluster
} // namespace fleet
