#ifndef FLEET_FAULT_FAULT_H
#define FLEET_FAULT_FAULT_H

/**
 * @file
 * Deterministic, seed-driven fault injection for the full-system
 * simulator. Production streaming stacks treat latency spikes,
 * backpressure storms, short streams, and corrupted data as first-class
 * events; this layer lets the cycle-accurate model reproduce them on
 * demand so the containment machinery (system/run_report.h) can be
 * exercised and regression-tested.
 *
 * Every fault decision is a *pure function* of (plan seed, channel or PU
 * index, event index) computed with SplitMix64-style mixing — no hidden
 * RNG state. That makes injection:
 *
 *  - deterministic: the same seed and plan produce the same faults on
 *    every run and at every host thread count (the determinism suite
 *    enforces RunReport equality across numThreads = 1, 2, 0);
 *  - composable: the DRAM model and both memory controllers consult the
 *    injector independently without sharing state;
 *  - free when disabled: a null injector is never consulted, so
 *    fault-free runs are bit-identical to a build without this layer.
 *
 * Fault classes (ISSUE 2):
 *  - read latency spikes: a read request's DRAM latency grows by
 *    `latencySpikeCycles` with probability latencySpikePermille/1000;
 *  - sustained backpressure: whole `backpressureWindow`-cycle windows in
 *    which the channel accepts no new read/write addresses, with
 *    probability backpressurePermille/1000 per window;
 *  - corrupted read beats: a delivered 512-bit beat carries a single-bit
 *    error with probability corruptBeatPerMillion/1e6; the input
 *    controller's per-beat parity check detects it (single-bit flips are
 *    always caught by parity) and the affected PU is contained;
 *  - truncated streams: a PU's input stream is cut to a random prefix
 *    (whole tokens) with probability truncatePermille/1000, modelling
 *    short or interrupted uploads.
 */

#include <cstdint>

namespace fleet {
namespace fault {

/** Seed-driven fault mix. Rates are integers so plans hash and compare
 * exactly; a default-constructed plan injects nothing. */
struct FaultPlan
{
    uint64_t seed = 0;

    /** Per read request, rate/1000 chance of +latencySpikeCycles. */
    uint32_t latencySpikePermille = 0;
    uint32_t latencySpikeCycles = 400;

    /** Per window, rate/1000 chance the window starts with a stall. */
    uint32_t backpressurePermille = 0;
    uint32_t backpressureWindow = 2048;
    uint32_t backpressureDuration = 512;

    /** Per delivered read beat, rate/1e6 chance of a single-bit error. */
    uint32_t corruptBeatPerMillion = 0;

    /** Per PU, rate/1000 chance its input stream is truncated. */
    uint32_t truncatePermille = 0;

    bool enabled() const
    {
        return latencySpikePermille || backpressurePermille ||
               corruptBeatPerMillion || truncatePermille;
    }

    /** A moderate mixed plan (all four classes) keyed by `seed` — what
     * `fig7_main_results --faults <seed>` and the CI fault job run. */
    static FaultPlan fromSeed(uint64_t seed);
};

bool operator==(const FaultPlan &a, const FaultPlan &b);

/**
 * One memory channel's view of a FaultPlan: pure predicate functions the
 * DRAM model and controllers call at their injection points. Stateless
 * and const, so shards can run concurrently without synchronization.
 */
class ChannelFaults
{
  public:
    ChannelFaults(const FaultPlan &plan, int channel_index)
        : plan_(plan), channel_(channel_index)
    {
    }

    /** Extra read latency for the channel's request_index-th AR. */
    uint64_t extraReadLatency(uint64_t request_index) const;

    /** True while the channel refuses new read/write addresses. */
    bool busBackpressured(uint64_t cycle) const;

    /** True if the channel's beat_index-th delivered read beat carries a
     * (parity-detectable) single-bit error. */
    bool beatCorrupted(uint64_t beat_index) const;

    const FaultPlan &plan() const { return plan_; }
    int channelIndex() const { return channel_; }

  private:
    FaultPlan plan_;
    int channel_;
};

/**
 * Stream truncation decision for one global PU index: returns the number
 * of tokens to keep out of `tokens` (== tokens when not truncated; a
 * truncated stream keeps at least one token when it had any).
 */
uint64_t truncatedStreamTokens(const FaultPlan &plan, int global_pu,
                               uint64_t tokens);

/**
 * Stream truncation decision keyed by a job id instead of a PU index
 * (the multi-stream job runtime, runtime/session.h). Keying by job makes
 * a given job's fault independent of which processing unit the scheduler
 * happens to re-arm with it. For job_id == the global PU index this is
 * exactly truncatedStreamTokens, so the one-shot path's decisions are
 * unchanged.
 */
uint64_t truncatedJobTokens(const FaultPlan &plan, uint64_t job_id,
                            uint64_t tokens);

} // namespace fault
} // namespace fleet

#endif // FLEET_FAULT_FAULT_H
