#include "fault/fault.h"

namespace fleet {
namespace fault {

namespace {

/** SplitMix64 finalizer: uniform mixing of a 64-bit key. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Hash of (seed, stream id, event index); stream ids keep the fault
 * classes' decision streams independent of each other. */
uint64_t
hashEvent(uint64_t seed, uint64_t stream_id, uint64_t index)
{
    uint64_t h = seed + 0x9e3779b97f4a7c15ULL * (stream_id + 1);
    return mix64(mix64(h) ^ (index + 0x6a09e667f3bcc909ULL));
}

/** Bernoulli trial at rate/denominator on a uniform 64-bit hash. */
bool
chance(uint64_t hash, uint32_t rate, uint64_t denominator)
{
    if (rate == 0)
        return false;
    if (rate >= denominator)
        return true;
    return hash % denominator < rate;
}

enum StreamId : uint64_t
{
    kLatency = 1,
    kBackpressure = 2,
    kCorrupt = 3,
    kTruncate = 4,
    kTruncateLen = 5,
};

/** Per-channel decision key: channels must fault independently. */
uint64_t
channelKey(uint64_t seed, int channel, uint64_t stream_id)
{
    return mix64(seed ^ (uint64_t(channel) + 1) * 0xd1342543de82ef95ULL) +
           stream_id;
}

} // namespace

FaultPlan
FaultPlan::fromSeed(uint64_t seed)
{
    FaultPlan plan;
    plan.seed = seed;
    plan.latencySpikePermille = 20;  // 2% of read requests.
    plan.latencySpikeCycles = 400;
    plan.backpressurePermille = 100; // 10% of windows stall.
    plan.backpressureWindow = 2048;
    plan.backpressureDuration = 512;
    plan.corruptBeatPerMillion = 40; // ~1 per 25k beats.
    plan.truncatePermille = 150;     // 15% of PUs get short streams.
    return plan;
}

bool
operator==(const FaultPlan &a, const FaultPlan &b)
{
    return a.seed == b.seed &&
           a.latencySpikePermille == b.latencySpikePermille &&
           a.latencySpikeCycles == b.latencySpikeCycles &&
           a.backpressurePermille == b.backpressurePermille &&
           a.backpressureWindow == b.backpressureWindow &&
           a.backpressureDuration == b.backpressureDuration &&
           a.corruptBeatPerMillion == b.corruptBeatPerMillion &&
           a.truncatePermille == b.truncatePermille;
}

uint64_t
ChannelFaults::extraReadLatency(uint64_t request_index) const
{
    uint64_t h = hashEvent(channelKey(plan_.seed, channel_, kLatency),
                           kLatency, request_index);
    return chance(h, plan_.latencySpikePermille, 1000)
               ? plan_.latencySpikeCycles
               : 0;
}

bool
ChannelFaults::busBackpressured(uint64_t cycle) const
{
    if (plan_.backpressurePermille == 0 || plan_.backpressureWindow == 0)
        return false;
    uint64_t window = cycle / plan_.backpressureWindow;
    if (cycle % plan_.backpressureWindow >= plan_.backpressureDuration)
        return false;
    uint64_t h = hashEvent(channelKey(plan_.seed, channel_, kBackpressure),
                           kBackpressure, window);
    return chance(h, plan_.backpressurePermille, 1000);
}

bool
ChannelFaults::beatCorrupted(uint64_t beat_index) const
{
    uint64_t h = hashEvent(channelKey(plan_.seed, channel_, kCorrupt),
                           kCorrupt, beat_index);
    return chance(h, plan_.corruptBeatPerMillion, 1000000);
}

uint64_t
truncatedStreamTokens(const FaultPlan &plan, int global_pu, uint64_t tokens)
{
    return truncatedJobTokens(plan, uint64_t(global_pu), tokens);
}

uint64_t
truncatedJobTokens(const FaultPlan &plan, uint64_t job_id, uint64_t tokens)
{
    if (tokens == 0 || plan.truncatePermille == 0)
        return tokens;
    uint64_t h = hashEvent(plan.seed, kTruncate, job_id);
    if (!chance(h, plan.truncatePermille, 1000))
        return tokens;
    uint64_t keep = hashEvent(plan.seed, kTruncateLen, job_id) % tokens;
    return keep == 0 ? 1 : keep;
}

} // namespace fault
} // namespace fleet
